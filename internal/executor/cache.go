package executor

import "sort"

// CacheKey identifies one cached RDD partition.
type CacheKey struct {
	RDD       int
	Partition int
}

// cacheEntry is one partition resident in some executor's storage memory.
type cacheEntry struct {
	key      CacheKey
	node     string
	bytes    int64
	lastUsed float64
	seq      uint64 // insertion tiebreak for deterministic LRU
}

// CacheTracker is the driver-side registry of cached RDD partitions — the
// equivalent of Spark's BlockManagerMaster. Executors insert and evict;
// the driver consults it at job-submission time to hand tasks their
// PROCESS_LOCAL locations.
type CacheTracker struct {
	entries map[CacheKey]*cacheEntry
	byNode  map[string]map[CacheKey]*cacheEntry
	seq     uint64

	// Evictions counts partitions dropped due to storage pressure; the
	// LR analysis in the paper's §IV-D hinges on how often this happens.
	Evictions int
}

// NewCacheTracker returns an empty tracker.
func NewCacheTracker() *CacheTracker {
	return &CacheTracker{
		entries: make(map[CacheKey]*cacheEntry),
		byNode:  make(map[string]map[CacheKey]*cacheEntry),
	}
}

// Lookup returns the node caching the partition and true, or "" and false.
func (c *CacheTracker) Lookup(key CacheKey) (string, bool) {
	e, ok := c.entries[key]
	if !ok {
		return "", false
	}
	return e.node, true
}

// Touch refreshes the LRU timestamp of a cached partition.
func (c *CacheTracker) Touch(key CacheKey, now float64) {
	if e, ok := c.entries[key]; ok {
		e.lastUsed = now
	}
}

// Remove drops a cached partition, returning where it was and its size.
func (c *CacheTracker) Remove(key CacheKey) (node string, bytes int64, ok bool) {
	e, found := c.entries[key]
	if !found {
		return "", 0, false
	}
	c.remove(key)
	return e.node, e.bytes, true
}

// Insert records a partition as cached on node. A partition cached twice
// moves to the new node (Spark keeps one in-memory replica by default).
func (c *CacheTracker) Insert(key CacheKey, node string, bytes int64, now float64) {
	c.remove(key)
	c.seq++
	e := &cacheEntry{key: key, node: node, bytes: bytes, lastUsed: now, seq: c.seq}
	c.entries[key] = e
	m := c.byNode[node]
	if m == nil {
		m = make(map[CacheKey]*cacheEntry)
		c.byNode[node] = m
	}
	m[key] = e
}

// NodeBytes returns the total cached bytes on node.
func (c *CacheTracker) NodeBytes(node string) int64 {
	var total int64
	for _, e := range c.byNode[node] {
		total += e.bytes
	}
	return total
}

// CachedPartitions returns the number of partitions currently cached.
func (c *CacheTracker) CachedPartitions() int { return len(c.entries) }

// EvictLRU drops least-recently-used partitions on node until at least
// need bytes have been reclaimed, returning the bytes actually reclaimed.
func (c *CacheTracker) EvictLRU(node string, need int64) int64 {
	m := c.byNode[node]
	if len(m) == 0 {
		return 0
	}
	es := make([]*cacheEntry, 0, len(m))
	for _, e := range m {
		es = append(es, e)
	}
	sort.Slice(es, func(i, j int) bool {
		if es[i].lastUsed != es[j].lastUsed {
			return es[i].lastUsed < es[j].lastUsed
		}
		return es[i].seq < es[j].seq
	})
	var reclaimed int64
	for _, e := range es {
		if reclaimed >= need {
			break
		}
		c.remove(e.key)
		reclaimed += e.bytes
		c.Evictions++
	}
	return reclaimed
}

// DropNode removes every partition cached on node (worker crash), returning
// the bytes lost.
func (c *CacheTracker) DropNode(node string) int64 {
	var lost int64
	for key, e := range c.byNode[node] {
		lost += e.bytes
		delete(c.entries, key)
		delete(c.byNode[node], key)
	}
	return lost
}

// DropNodeRange removes the partitions cached on node whose RDD ID falls
// in [rddLo, rddHi), returning the bytes reclaimed. In multi-tenant runs
// each application owns a disjoint RDD ID range, so this drops exactly one
// app's partitions when its executor lease on the node is released while
// leaving sibling apps' cached state (and all shuffle outputs) alone.
func (c *CacheTracker) DropNodeRange(node string, rddLo, rddHi int) int64 {
	var lost int64
	for key, e := range c.byNode[node] {
		if key.RDD < rddLo || key.RDD >= rddHi {
			continue
		}
		lost += e.bytes
		delete(c.entries, key)
		delete(c.byNode[node], key)
	}
	return lost
}

// Keys returns every cached partition key with its node, in deterministic
// order (isolation audits: a tenant invariant checker walks the whole cache
// to prove each entry sits inside its owner's RDD ID range).
func (c *CacheTracker) Keys() []CacheKeyAt {
	out := make([]CacheKeyAt, 0, len(c.entries))
	for key, e := range c.entries {
		out = append(out, CacheKeyAt{Key: key, Node: e.node, Bytes: e.bytes})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Key.RDD != out[j].Key.RDD {
			return out[i].Key.RDD < out[j].Key.RDD
		}
		return out[i].Key.Partition < out[j].Key.Partition
	})
	return out
}

// CacheKeyAt is one cached partition with its location (audit snapshot).
type CacheKeyAt struct {
	Key   CacheKey
	Node  string
	Bytes int64
}

func (c *CacheTracker) remove(key CacheKey) {
	e, ok := c.entries[key]
	if !ok {
		return
	}
	delete(c.entries, key)
	delete(c.byNode[e.node], key)
}
