package executor

import (
	"math"
	"testing"

	"rupam/internal/cluster"
	"rupam/internal/hdfs"
	"rupam/internal/simx"
	"rupam/internal/task"
)

func almost(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

// rig is a minimal two-node world for executor tests.
type rig struct {
	eng   *simx.Engine
	clu   *cluster.Cluster
	cache *CacheTracker
	peers map[string]*Executor
	a, b  *Executor
}

func newRig(t *testing.T, heap int64, cfg Config) *rig {
	t.Helper()
	ResetRunSeq()
	eng := simx.NewEngine()
	clu := cluster.New(eng)
	spec := cluster.NodeSpec{
		Class: "t", Cores: 4, FreqGHz: 2,
		MemBytes: 16 * cluster.GB, NetBandwidth: cluster.GbE(1),
		DiskReadBW: cluster.MBps(200), DiskWriteBW: cluster.MBps(100),
		GPUs: 1, GPURateGHz: 20,
	}
	sa, sb := spec, spec
	sa.Name, sb.Name = "a", "b"
	na := clu.AddNode(sa)
	clu.AddNode(sb)
	_ = na
	cache := NewCacheTracker()
	peers := make(map[string]*Executor)
	cfg.HeapBytes = heap
	cfg.DriverNode = "a"
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	a := New(eng, clu, clu.Node("a"), cache, peers, cfg)
	b := New(eng, clu, clu.Node("b"), cache, peers, cfg)
	return &rig{eng: eng, clu: clu, cache: cache, peers: peers, a: a, b: b}
}

func mkTask(id int, d task.Demand) (*task.Task, *task.Stage) {
	st := &task.Stage{ID: 1, Signature: "sig", Kind: task.ShuffleMap}
	tk := &task.Task{ID: id, StageID: 1, Kind: task.ShuffleMap, Demand: d}
	st.Tasks = []*task.Task{tk}
	return tk, st
}

func TestTaskSuccessPath(t *testing.T) {
	r := newRig(t, 8*cluster.GB, Config{})
	tk, st := mkTask(1, task.Demand{
		CPUWork:    4, // 2 s at 2 GHz
		PeakMemory: 100 * cluster.MB,
	})
	var out Outcome = -1
	r.a.Launch(tk, st, Options{}, func(_ *Run, o Outcome) { out = o })
	r.eng.Run()
	if out != Success {
		t.Fatalf("outcome = %v", out)
	}
	m := tk.Attempts[0]
	if !almost(m.ComputeTime, 2, 0.01) {
		t.Fatalf("compute time = %v, want ~2", m.ComputeTime)
	}
	if m.End <= m.Start || m.Start < m.Launch {
		t.Fatal("timeline inconsistent")
	}
	if r.a.HeapFree() != 8*cluster.GB {
		t.Fatal("memory not released after success")
	}
	if r.a.RunningTasks() != 0 {
		t.Fatal("running set not empty")
	}
}

func TestMemoryReservationLifecycle(t *testing.T) {
	r := newRig(t, 8*cluster.GB, Config{})
	tk, st := mkTask(1, task.Demand{CPUWork: 1, PeakMemory: cluster.GB})
	r.a.Launch(tk, st, Options{}, nil)
	// Before dispatch completes, the memory is reserved but unallocated.
	if r.a.ProjectedFree() != 7*cluster.GB {
		t.Fatalf("projected free = %d", r.a.ProjectedFree())
	}
	if r.a.HeapFree() != 8*cluster.GB {
		t.Fatalf("heap free = %d before start", r.a.HeapFree())
	}
	r.eng.Run()
	if r.a.ProjectedFree() != 8*cluster.GB {
		t.Fatal("reservation not returned")
	}
}

func TestOOMWhenHeapTooSmall(t *testing.T) {
	r := newRig(t, cluster.GB, Config{WorkerCrashProb: 1e-12})
	tk, st := mkTask(1, task.Demand{CPUWork: 2, PeakMemory: 2 * cluster.GB})
	var out Outcome = -1
	r.a.Launch(tk, st, Options{}, func(_ *Run, o Outcome) { out = o })
	r.eng.Run()
	if out != OOM {
		t.Fatalf("outcome = %v, want OOM", out)
	}
	if !tk.Attempts[0].OOM {
		t.Fatal("metrics missing OOM flag")
	}
	if r.a.OOMs != 1 {
		t.Fatalf("OOM counter = %d", r.a.OOMs)
	}
}

func TestOOMCrashDropsCacheAndRestarts(t *testing.T) {
	r := newRig(t, cluster.GB, Config{WorkerCrashProb: 0.9999999, RestartDelay: 10})
	// Seed some cache on node a.
	r.cache.Insert(CacheKey{RDD: 1, Partition: 0}, "a", 100*cluster.MB, 0)
	r.a.Heap().ForceAlloc(100 * cluster.MB)

	tk, st := mkTask(1, task.Demand{CPUWork: 2, PeakMemory: 4 * cluster.GB})
	restarted := false
	r.a.OnRestart = func() { restarted = true }
	r.a.Launch(tk, st, Options{}, nil)
	r.eng.Run()
	if r.a.Crashes != 1 {
		t.Fatalf("crashes = %d", r.a.Crashes)
	}
	if _, ok := r.cache.Lookup(CacheKey{RDD: 1, Partition: 0}); ok {
		t.Fatal("crash did not drop node cache")
	}
	if !restarted {
		t.Fatal("OnRestart not invoked")
	}
	if r.a.Down() {
		t.Fatal("executor still down after restart delay")
	}
}

func TestCrashKillsCoResidentTasks(t *testing.T) {
	r := newRig(t, 3*cluster.GB, Config{WorkerCrashProb: 0.9999999})
	longTk, longSt := mkTask(1, task.Demand{CPUWork: 1000, PeakMemory: cluster.GB})
	var longOut Outcome = -1
	r.a.Launch(longTk, longSt, Options{}, func(_ *Run, o Outcome) { longOut = o })

	oomTk, oomSt := mkTask(2, task.Demand{CPUWork: 2, PeakMemory: 8 * cluster.GB})
	r.a.Launch(oomTk, oomSt, Options{}, nil)
	r.eng.Run()
	if longOut != Killed {
		t.Fatalf("co-resident task outcome = %v, want Killed", longOut)
	}
}

func TestGPUUsedWhenAvailable(t *testing.T) {
	r := newRig(t, 8*cluster.GB, Config{})
	tk, st := mkTask(1, task.Demand{CPUWork: 1, GPUWork: 40, PeakMemory: cluster.MB})
	r.a.Launch(tk, st, Options{}, nil)
	r.eng.Run()
	m := tk.Attempts[0]
	if !m.UsedGPU {
		t.Fatal("GPU-capable task did not use the idle GPU")
	}
	// 1 Gc CPU at 2 GHz (0.5 s) + 40 Gc GPU at 20 GHz (2 s).
	if !almost(m.ComputeTime, 2.5, 0.01) {
		t.Fatalf("GPU compute time = %v, want ~2.5", m.ComputeTime)
	}
	if r.a.Node().GPU.InUse() != 0 {
		t.Fatal("GPU token leaked")
	}
}

func TestForbidGPUFallsBack(t *testing.T) {
	r := newRig(t, 8*cluster.GB, Config{})
	tk, st := mkTask(1, task.Demand{CPUWork: 1, GPUWork: 40, PeakMemory: cluster.MB})
	r.a.Launch(tk, st, Options{ForbidGPU: true}, nil)
	r.eng.Run()
	m := tk.Attempts[0]
	if m.UsedGPU {
		t.Fatal("ForbidGPU ignored")
	}
	// 41 Gc all on a 2 GHz core → 20.5 s.
	if !almost(m.ComputeTime, 20.5, 0.1) {
		t.Fatalf("fallback compute = %v, want ~20.5", m.ComputeTime)
	}
}

func TestLocalInputReadUsesDisk(t *testing.T) {
	r := newRig(t, 8*cluster.GB, Config{})
	tk, st := mkTask(1, task.Demand{CPUWork: 0.1, InputBytes: 200 * 1e6, PeakMemory: cluster.MB})
	tk.PrefNodes = []string{"a"}
	r.a.Launch(tk, st, Options{Locality: hdfs.NodeLocal}, nil)
	r.eng.Run()
	m := tk.Attempts[0]
	if m.InputDiskTime <= 0 || m.InputNetTime != 0 {
		t.Fatalf("local read: disk=%v net=%v", m.InputDiskTime, m.InputNetTime)
	}
	// 200 MB at 200 MB/s ≈ 1 s.
	if !almost(m.InputDiskTime, 1, 0.05) {
		t.Fatalf("disk read time = %v, want ~1", m.InputDiskTime)
	}
}

func TestRemoteInputReadUsesNetwork(t *testing.T) {
	r := newRig(t, 8*cluster.GB, Config{})
	tk, st := mkTask(1, task.Demand{CPUWork: 0.1, InputBytes: 125 * 1e6, PeakMemory: cluster.MB})
	tk.PrefNodes = []string{"b"} // replica on the other node
	r.a.Launch(tk, st, Options{Locality: hdfs.Any}, nil)
	r.eng.Run()
	m := tk.Attempts[0]
	if m.InputNetTime <= 0 {
		t.Fatal("remote read did not use the network")
	}
	if m.BytesReadRemote != 125*1e6 {
		t.Fatalf("remote bytes = %d", m.BytesReadRemote)
	}
	// 125 MB over 1 GbE (125 MB/s) ≈ 1 s (disk read at 200 MB/s is faster).
	if !almost(m.InputNetTime, 1, 0.05) {
		t.Fatalf("net read time = %v, want ~1", m.InputNetTime)
	}
}

func TestCacheHitLocalIsFree(t *testing.T) {
	r := newRig(t, 8*cluster.GB, Config{})
	r.cache.Insert(CacheKey{RDD: 5, Partition: 0}, "a", 100*cluster.MB, 0)
	r.a.Heap().ForceAlloc(100 * cluster.MB)
	tk, st := mkTask(1, task.Demand{CPUWork: 0.1, InputBytes: 100 * 1e6, PeakMemory: cluster.MB})
	tk.CacheRDD = 5
	r.a.Launch(tk, st, Options{Locality: hdfs.ProcessLocal}, nil)
	r.eng.Run()
	m := tk.Attempts[0]
	if m.InputDiskTime != 0 || m.InputNetTime != 0 {
		t.Fatalf("local cache hit cost I/O: disk=%v net=%v", m.InputDiskTime, m.InputNetTime)
	}
}

func TestCacheRemoteHitMigratesBlock(t *testing.T) {
	r := newRig(t, 8*cluster.GB, Config{RelocateCacheOnRemoteRead: true})
	key := CacheKey{RDD: 5, Partition: 0}
	r.cache.Insert(key, "b", 100*cluster.MB, 0)
	r.b.Heap().ForceAlloc(100 * cluster.MB)

	tk, st := mkTask(1, task.Demand{CPUWork: 0.1, InputBytes: 100 * 1e6, PeakMemory: cluster.MB})
	tk.CacheRDD = 5
	r.a.Launch(tk, st, Options{Locality: hdfs.Any}, nil)
	r.eng.Run()
	m := tk.Attempts[0]
	if m.InputNetTime <= 0 {
		t.Fatal("remote cache hit did not stream")
	}
	if node, ok := r.cache.Lookup(key); !ok || node != "a" {
		t.Fatalf("block did not relocate: %v", node)
	}
	if r.b.Heap().Used() != 0 {
		t.Fatalf("old node heap not released: %d", r.b.Heap().Used())
	}
}

func TestCacheRemoteHitStaysPutByDefault(t *testing.T) {
	// Stock Spark semantics: a remote cache read does not move the block.
	r := newRig(t, 8*cluster.GB, Config{})
	key := CacheKey{RDD: 5, Partition: 0}
	r.cache.Insert(key, "b", 100*cluster.MB, 0)
	r.b.Heap().ForceAlloc(100 * cluster.MB)

	tk, st := mkTask(1, task.Demand{CPUWork: 0.1, InputBytes: 100 * 1e6, PeakMemory: cluster.MB})
	tk.CacheRDD = 5
	r.a.Launch(tk, st, Options{Locality: hdfs.Any}, nil)
	r.eng.Run()
	if node, ok := r.cache.Lookup(key); !ok || node != "b" {
		t.Fatalf("block moved without relocation enabled: %v", node)
	}
}

func TestShuffleReadSplitsLocalRemote(t *testing.T) {
	r := newRig(t, 8*cluster.GB, Config{})
	st := &task.Stage{ID: 2, Kind: task.Result}
	parent := &task.Stage{ID: 1, Kind: task.ShuffleMap}
	parent.AddShuffleOutput("a", 50*1e6)
	parent.AddShuffleOutput("b", 50*1e6)
	st.Parent = []*task.Stage{parent}
	tk := &task.Task{ID: 1, StageID: 2, Kind: task.Result,
		Demand: task.Demand{CPUWork: 0.1, ShuffleReadBytes: 100 * 1e6, PeakMemory: cluster.MB}}
	st.Tasks = []*task.Task{tk}

	r.a.Launch(tk, st, Options{}, nil)
	r.eng.Run()
	m := tk.Attempts[0]
	if m.ShuffleReadTime <= 0 {
		t.Fatal("no shuffle read recorded")
	}
	if m.BytesReadRemote != 50*1e6 {
		t.Fatalf("remote share = %d, want half", m.BytesReadRemote)
	}
}

func TestShuffleWriteRegistersOutput(t *testing.T) {
	r := newRig(t, 8*cluster.GB, Config{})
	tk, st := mkTask(1, task.Demand{CPUWork: 0.1, ShuffleWriteBytes: 50 * 1e6, PeakMemory: cluster.MB})
	r.a.Launch(tk, st, Options{}, nil)
	r.eng.Run()
	if st.ShuffleOutputByNode["a"] != 50*1e6 {
		t.Fatalf("shuffle output not registered: %v", st.ShuffleOutputByNode)
	}
	if tk.Attempts[0].ShuffleWriteTime <= 0 {
		t.Fatal("no shuffle write time")
	}
}

func TestCacheInsertAndEviction(t *testing.T) {
	cfg := Config{StorageFraction: 0.5}
	r := newRig(t, 1*cluster.GB, cfg) // 512 MB storage
	// Two tasks cache 300 MB each: the second insert must evict the first.
	for i := 0; i < 2; i++ {
		st := &task.Stage{ID: 10 + i, Signature: "c", Kind: task.ShuffleMap, CacheRDDID: 7}
		tk := &task.Task{ID: 100 + i, Index: i, Kind: task.ShuffleMap,
			Demand: task.Demand{CPUWork: 0.1, CacheBytes: 300 * cluster.MB, PeakMemory: cluster.MB}}
		st.Tasks = []*task.Task{tk}
		r.a.Launch(tk, st, Options{}, nil)
		r.eng.Run()
	}
	if _, ok := r.cache.Lookup(CacheKey{RDD: 7, Partition: 0}); ok {
		t.Fatal("LRU entry not evicted under storage pressure")
	}
	if _, ok := r.cache.Lookup(CacheKey{RDD: 7, Partition: 1}); !ok {
		t.Fatal("newest entry missing")
	}
	if r.cache.Evictions == 0 {
		t.Fatal("eviction not counted")
	}
}

func TestKillReleasesEverything(t *testing.T) {
	r := newRig(t, 8*cluster.GB, Config{})
	tk, st := mkTask(1, task.Demand{CPUWork: 1000, GPUWork: 1000, PeakMemory: cluster.GB})
	var run *Run
	run = r.a.Launch(tk, st, Options{}, func(_ *Run, o Outcome) {
		t.Errorf("kill with notify=false still fired callback: %v", o)
	})
	r.eng.Schedule(5, func() { run.Kill(false) })
	r.eng.Run()
	if r.a.Heap().Used() != 0 {
		t.Fatal("memory leaked after kill")
	}
	if r.a.Node().GPU.InUse() != 0 {
		t.Fatal("GPU leaked after kill")
	}
	if !tk.Attempts[0].Killed {
		t.Fatal("metrics missing Killed flag")
	}
	if r.a.RunningTasks() != 0 {
		t.Fatal("running set not cleaned")
	}
}

func TestKillNotifyFiresCallback(t *testing.T) {
	r := newRig(t, 8*cluster.GB, Config{})
	tk, st := mkTask(1, task.Demand{CPUWork: 1000, PeakMemory: cluster.MB})
	var out Outcome = -1
	run := r.a.Launch(tk, st, Options{}, func(_ *Run, o Outcome) { out = o })
	r.eng.Schedule(1, func() { run.Kill(true) })
	r.eng.Run()
	if out != Killed {
		t.Fatalf("outcome = %v, want Killed", out)
	}
}

func TestGCGrowsWithPressure(t *testing.T) {
	run := func(heap int64) float64 {
		r := newRig(t, heap, Config{})
		tk, st := mkTask(1, task.Demand{CPUWork: 1, PeakMemory: 900 * cluster.MB})
		r.a.Launch(tk, st, Options{}, nil)
		r.eng.Run()
		return tk.Attempts[0].GCTime
	}
	roomy := run(16 * cluster.GB)
	tight := run(1 * cluster.GB)
	if tight <= roomy {
		t.Fatalf("GC under pressure (%v) not above roomy heap (%v)", tight, roomy)
	}
}

func TestContentionSlowsCoLocatedTasks(t *testing.T) {
	// 8 equal CPU tasks on a 4-core node take twice as long as 4.
	elapsed := func(n int) float64 {
		r := newRig(t, 8*cluster.GB, Config{})
		for i := 0; i < n; i++ {
			tk, st := mkTask(i, task.Demand{CPUWork: 4, PeakMemory: cluster.MB})
			r.a.Launch(tk, st, Options{}, nil)
		}
		r.eng.Run()
		return r.eng.Now()
	}
	t4, t8 := elapsed(4), elapsed(8)
	if !almost(t8/t4, 2, 0.1) {
		t.Fatalf("8 vs 4 tasks: %v vs %v (ratio %v, want ~2)", t8, t4, t8/t4)
	}
}

func TestOutcomeString(t *testing.T) {
	if Success.String() != "success" || OOM.String() != "oom" || Killed.String() != "killed" {
		t.Fatal("outcome strings wrong")
	}
}

func TestLaunchOnDownExecutorPanics(t *testing.T) {
	r := newRig(t, cluster.GB, Config{WorkerCrashProb: 0.999999})
	tk, st := mkTask(1, task.Demand{CPUWork: 1, PeakMemory: 8 * cluster.GB})
	r.a.Launch(tk, st, Options{}, nil)
	r.eng.Run() // OOM → crash → down... then restart fires; re-crash quickly
	r.a.crash()
	defer func() {
		if recover() == nil {
			t.Fatal("launch on downed executor did not panic")
		}
	}()
	tk2, st2 := mkTask(2, task.Demand{CPUWork: 1})
	r.a.Launch(tk2, st2, Options{}, nil)
}

func TestFailStopMidShuffleWrite(t *testing.T) {
	// Fail-stop node a while a task is inside its shuffle-write phase: the
	// attempt and its co-resident must die silently (Killed metrics, no
	// callback), the half-written output must not be registered, cached
	// partitions must be gone, and the engine must quiesce with no orphaned
	// claims or flows.
	r := newRig(t, 8*cluster.GB, Config{})
	r.cache.Insert(CacheKey{RDD: 1, Partition: 0}, "a", 100*cluster.MB, 0)
	r.a.Heap().ForceAlloc(100 * cluster.MB)

	// 200 MB at 100 MB/s disk write: the write phase spans ~2 s after ~1 s
	// of compute (CPUWork 2 at 2 GHz on 1 core of 4... compute is 1 s).
	wrTk, wrSt := mkTask(1, task.Demand{
		CPUWork: 2, PeakMemory: 100 * cluster.MB, ShuffleWriteBytes: 200 * 1e6,
	})
	var wrFired, coFired bool
	r.a.Launch(wrTk, wrSt, Options{}, func(*Run, Outcome) { wrFired = true })
	coTk, coSt := mkTask(2, task.Demand{CPUWork: 1000, PeakMemory: cluster.GB})
	r.a.Launch(coTk, coSt, Options{}, func(*Run, Outcome) { coFired = true })

	r.eng.Schedule(2.0, func() { r.a.FailStop(0) }) // mid shuffle write
	r.eng.Run()

	if wrFired || coFired {
		t.Fatal("fail-stop must be silent: a completion callback fired")
	}
	if !wrTk.Attempts[0].Killed || !coTk.Attempts[0].Killed {
		t.Fatal("attempts not marked killed")
	}
	if len(wrSt.ShuffleOutputByNode) != 0 || wrSt.OutputNodeOf(wrTk.Index) != "" {
		t.Fatalf("half-written shuffle output registered: %v", wrSt.ShuffleOutputByNode)
	}
	if r.cache.NodeBytes("a") != 0 {
		t.Fatalf("node cache survived the crash: %d bytes", r.cache.NodeBytes("a"))
	}
	if r.a.RunningTasks() != 0 {
		t.Fatalf("%d attempts still running on the corpse", r.a.RunningTasks())
	}
	if r.a.FailStops != 1 || r.a.Incarnation != 0 {
		t.Fatalf("FailStops=%d Incarnation=%d, want 1 and 0 (no recovery)", r.a.FailStops, r.a.Incarnation)
	}
	if pend := r.eng.Pending(); pend != 0 {
		t.Fatalf("engine left %d events pending (orphaned claims?)", pend)
	}
	_ = coSt
}

func TestFailStopRecoveryBumpsIncarnation(t *testing.T) {
	r := newRig(t, 8*cluster.GB, Config{})
	restarted := false
	r.a.OnRestart = func() { restarted = true }
	r.a.FailStop(5)
	if !r.a.Down() || !r.a.FailStopped() {
		t.Fatal("node not down after fail-stop")
	}
	r.eng.Run()
	if !restarted || r.a.Down() || r.a.FailStopped() {
		t.Fatal("node did not recover")
	}
	if r.a.Incarnation != 1 {
		t.Fatalf("incarnation = %d, want 1", r.a.Incarnation)
	}
}
