// Package netsim is a flow-level network simulator with max-min fair
// bandwidth sharing. Each node has an egress and an ingress capacity (its
// NIC, full duplex); a flow transfers a byte count from one node to
// another and is throttled by whichever of the two directions is more
// contended. Rates are recomputed by progressive filling (water-filling)
// whenever a flow starts, finishes, or is cancelled.
//
// This reproduces the asymmetry RUPAM exploits in the paper: shuffles
// terminating at a 1 GbE node are ~10× slower than at a 10 GbE node, and
// concurrent shuffle waves contend for the same NICs.
package netsim

import (
	"fmt"
	"math"
	"sort"

	"rupam/internal/simx"
	"rupam/internal/stats"
)

const bytesEps = 1e-6

// loopbackRate is the service rate for flows whose source and destination
// are the same node; such transfers are memory copies, effectively free at
// the timescales simulated (but non-zero so event ordering stays sane).
const loopbackRate = 8e9 // 8 GB/s

// Iface holds one node's NIC state.
type Iface struct {
	name       string
	egressCap  float64 // bytes/sec
	ingressCap float64 // bytes/sec

	egRate, inRate   float64 // currently allocated rates
	egUtil, inUtil   stats.TimeAvg
	egBytes, inBytes float64 // totals transferred
}

// Name returns the node name of the interface.
func (i *Iface) Name() string { return i.name }

// EgressCap returns the NIC's outbound capacity in bytes/sec.
func (i *Iface) EgressCap() float64 { return i.egressCap }

// IngressCap returns the NIC's inbound capacity in bytes/sec.
func (i *Iface) IngressCap() float64 { return i.ingressCap }

// EgressRate returns the currently allocated outbound rate in bytes/sec.
func (i *Iface) EgressRate() float64 { return i.egRate }

// IngressRate returns the currently allocated inbound rate in bytes/sec.
func (i *Iface) IngressRate() float64 { return i.inRate }

// TotalSent returns the total bytes sent by this node.
func (i *Iface) TotalSent() float64 { return i.egBytes }

// TotalReceived returns the total bytes received by this node.
func (i *Iface) TotalReceived() float64 { return i.inBytes }

// Utilization returns the instantaneous utilization fraction of the busier
// direction.
func (i *Iface) Utilization() float64 {
	eg, in := 0.0, 0.0
	if i.egressCap > 0 {
		eg = i.egRate / i.egressCap
	}
	if i.ingressCap > 0 {
		in = i.inRate / i.ingressCap
	}
	return math.Max(eg, in)
}

// Flow is an in-progress transfer.
type Flow struct {
	src, dst  *Iface
	seq       uint64
	remaining float64
	rate      float64
	onDone    func()
	done      bool
	loopback  bool
}

// Remaining returns the bytes left to transfer as of the last network
// update (call Network.Sync first for an exact figure).
func (f *Flow) Remaining() float64 { return f.remaining }

// Rate returns the flow's currently allocated rate in bytes/sec.
func (f *Flow) Rate() float64 { return f.rate }

// Src returns the node name the flow transfers from.
func (f *Flow) Src() string { return f.src.name }

// Dst returns the node name the flow transfers to.
func (f *Flow) Dst() string { return f.dst.name }

// Done reports whether the flow has finished or been cancelled.
func (f *Flow) Done() bool { return f.done }

// Network is the collection of interfaces and active flows.
type Network struct {
	eng        *simx.Engine
	ifaces     map[string]*Iface
	order      []string // deterministic iteration order
	flows      map[*Flow]struct{}
	flowSeq    uint64
	lastUpdate float64
	timer      *simx.Timer
	target     *Flow // flow the armed timer is for; force-completed on fire
}

// New creates an empty network on the given engine.
func New(eng *simx.Engine) *Network {
	return &Network{
		eng:    eng,
		ifaces: make(map[string]*Iface),
		flows:  make(map[*Flow]struct{}),
	}
}

// AddNode registers a node with the given full-duplex NIC capacities in
// bytes/sec. It panics on duplicates or non-positive capacities.
func (n *Network) AddNode(name string, egress, ingress float64) *Iface {
	if _, ok := n.ifaces[name]; ok {
		panic(fmt.Sprintf("netsim: duplicate node %q", name))
	}
	if egress <= 0 || ingress <= 0 {
		panic(fmt.Sprintf("netsim: node %q with non-positive capacity", name))
	}
	i := &Iface{name: name, egressCap: egress, ingressCap: ingress}
	n.ifaces[name] = i
	n.order = append(n.order, name)
	return i
}

// Iface returns the interface for the named node, or nil.
func (n *Network) Iface(name string) *Iface { return n.ifaces[name] }

// SetCapacity re-rates a node's NIC mid-simulation (a transient
// degradation window, or its end). In-flight flows keep the bytes already
// transferred and are re-shared max-min fairly at the new capacity. It
// panics on an unknown node or non-positive capacity.
func (n *Network) SetCapacity(name string, egress, ingress float64) {
	i, ok := n.ifaces[name]
	if !ok {
		panic(fmt.Sprintf("netsim: unknown node %q", name))
	}
	if egress <= 0 || ingress <= 0 {
		panic(fmt.Sprintf("netsim: node %q: non-positive capacity", name))
	}
	n.advance()
	i.egressCap, i.ingressCap = egress, ingress
	n.reallocate()
}

// ActiveFlows returns the number of in-progress flows.
func (n *Network) ActiveFlows() int { return len(n.flows) }

// Start begins transferring bytes from src to dst; onDone fires at
// completion. Transfers with src == dst run at loopback speed. A
// non-positive byte count completes immediately (asynchronously).
func (n *Network) Start(src, dst string, bytes float64, onDone func()) *Flow {
	s, ok := n.ifaces[src]
	if !ok {
		panic(fmt.Sprintf("netsim: unknown source %q", src))
	}
	d, ok := n.ifaces[dst]
	if !ok {
		panic(fmt.Sprintf("netsim: unknown destination %q", dst))
	}
	n.flowSeq++
	f := &Flow{src: s, dst: d, seq: n.flowSeq, remaining: bytes, onDone: onDone, loopback: src == dst}
	if bytes <= bytesEps {
		f.done = true
		n.eng.Schedule(0, func() {
			if onDone != nil {
				onDone()
			}
		})
		return f
	}
	n.advance()
	n.flows[f] = struct{}{}
	n.reallocate()
	return f
}

// Cancel aborts a flow without firing its callback, returning the bytes
// not yet transferred.
func (n *Network) Cancel(f *Flow) float64 {
	if f.done {
		return 0
	}
	n.advance()
	delete(n.flows, f)
	f.done = true
	rem := f.remaining
	n.reallocate()
	return rem
}

// Redirect cancels an in-flight flow and restarts its untransferred
// remainder from a different source node, preserving the destination and
// completion callback — a reader switching to a replica mid-transfer.
// Returns the replacement flow, or nil if the original had already
// finished (there is nothing left to redirect).
func (n *Network) Redirect(f *Flow, newSrc string) *Flow {
	if f == nil || f.done {
		return nil
	}
	dst, onDone := f.dst.name, f.onDone
	rem := n.Cancel(f)
	return n.Start(newSrc, dst, rem, onDone)
}

// Sync folds the elapsed interval into flow progress and utilization
// accounting without changing allocations. Call before reading Remaining
// or utilization statistics mid-simulation.
func (n *Network) Sync() {
	n.advance()
	n.reallocate()
}

// AvgEgressRate returns the node's time-weighted average outbound rate in
// bytes/sec.
func (n *Network) AvgEgressRate(name string) float64 {
	n.Sync()
	return n.ifaces[name].egUtil.Value()
}

// AvgIngressRate returns the node's time-weighted average inbound rate in
// bytes/sec.
func (n *Network) AvgIngressRate(name string) float64 {
	n.Sync()
	return n.ifaces[name].inUtil.Value()
}

// advance applies transfer progress between lastUpdate and now.
func (n *Network) advance() {
	now := n.eng.Now()
	for _, name := range n.order {
		i := n.ifaces[name]
		i.egUtil.Observe(now, i.egRate)
		i.inUtil.Observe(now, i.inRate)
	}
	dt := now - n.lastUpdate
	if dt > 0 {
		for f := range n.flows {
			moved := f.rate * dt
			f.remaining -= moved
			f.src.egBytes += moved
			f.dst.inBytes += moved
		}
	}
	n.lastUpdate = now
}

// reallocate recomputes max-min fair rates via progressive filling and
// re-arms the completion timer.
func (n *Network) reallocate() {
	if n.timer != nil {
		n.timer.Cancel()
		n.timer = nil
		n.target = nil
	}
	// Reset per-iface aggregates.
	for _, name := range n.order {
		i := n.ifaces[name]
		i.egRate, i.inRate = 0, 0
	}
	if len(n.flows) == 0 {
		return
	}

	// Collect flows deterministically.
	active := make([]*Flow, 0, len(n.flows))
	for f := range n.flows {
		active = append(active, f)
	}
	sort.Slice(active, func(a, b int) bool { return active[a].seq < active[b].seq })

	// Loopback flows bypass the NIC.
	var netFlows []*Flow
	for _, f := range active {
		if f.loopback {
			f.rate = loopbackRate
		} else {
			f.rate = 0
			netFlows = append(netFlows, f)
		}
	}

	n.waterfill(netFlows)

	// Accumulate iface aggregate rates.
	for _, f := range active {
		if f.loopback {
			continue
		}
		f.src.egRate += f.rate
		f.dst.inRate += f.rate
	}

	// Earliest completion.
	minT := math.Inf(1)
	var target *Flow
	for _, f := range active {
		if f.rate > 0 {
			t := f.remaining / f.rate
			if t < minT {
				minT = t
				target = f
			}
		}
	}
	if target != nil {
		if minT < 0 {
			minT = 0
		}
		n.target = target
		n.timer = n.eng.Schedule(minT, n.complete)
	}
}

// link identifies one direction of one interface during water-filling.
type link struct {
	residual float64
	count    int
}

// waterfill assigns max-min fair rates to flows constrained by source
// egress and destination ingress capacities.
func (n *Network) waterfill(flows []*Flow) {
	if len(flows) == 0 {
		return
	}
	eg := make(map[*Iface]*link)
	in := make(map[*Iface]*link)
	for _, f := range flows {
		le, ok := eg[f.src]
		if !ok {
			le = &link{residual: f.src.egressCap}
			eg[f.src] = le
		}
		le.count++
		li, ok := in[f.dst]
		if !ok {
			li = &link{residual: f.dst.ingressCap}
			in[f.dst] = li
		}
		li.count++
	}
	frozen := make([]bool, len(flows))
	remaining := len(flows)
	for remaining > 0 {
		// Find the bottleneck share among links with unfrozen flows.
		share := math.Inf(1)
		for _, l := range eg {
			if l.count > 0 {
				if s := l.residual / float64(l.count); s < share {
					share = s
				}
			}
		}
		for _, l := range in {
			if l.count > 0 {
				if s := l.residual / float64(l.count); s < share {
					share = s
				}
			}
		}
		if math.IsInf(share, 1) {
			break
		}
		// Freeze every unfrozen flow crossing a bottleneck link at the
		// bottleneck share.
		progressed := false
		for idx, f := range flows {
			if frozen[idx] {
				continue
			}
			le, li := eg[f.src], in[f.dst]
			egShare := le.residual / float64(le.count)
			inShare := li.residual / float64(li.count)
			if egShare <= share+1e-9 || inShare <= share+1e-9 {
				f.rate = share
				frozen[idx] = true
				remaining--
				progressed = true
				le.residual -= share
				le.count--
				li.residual -= share
				li.count--
			}
		}
		if !progressed {
			// Numerical safety net: freeze everything at the current share.
			for idx, f := range flows {
				if !frozen[idx] {
					f.rate = share
					frozen[idx] = true
					remaining--
				}
			}
		}
	}
}

// complete fires when the earliest flow(s) finish.
func (n *Network) complete() {
	n.timer = nil
	n.advance()
	// Force the targeted flow done: floating-point residue must not re-arm
	// a zero-length timer forever (see PSResource.complete).
	if t := n.target; t != nil && !t.done {
		t.remaining = 0
	}
	n.target = nil
	var finished []*Flow
	for f := range n.flows {
		if f.remaining <= bytesEps {
			finished = append(finished, f)
		}
	}
	for _, f := range finished {
		delete(n.flows, f)
		f.done = true
		f.remaining = 0
	}
	n.reallocate()
	sort.Slice(finished, func(a, b int) bool { return finished[a].seq < finished[b].seq })
	for _, f := range finished {
		if f.onDone != nil {
			f.onDone()
		}
	}
}
