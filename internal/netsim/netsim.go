// Package netsim is a flow-level network simulator with max-min fair
// bandwidth sharing. Each node has an egress and an ingress capacity (its
// NIC, full duplex); a flow transfers a byte count from one node to
// another and is throttled by whichever of the two directions is more
// contended. Rates are recomputed by progressive filling (water-filling)
// whenever a flow starts, finishes, or is cancelled.
//
// This reproduces the asymmetry RUPAM exploits in the paper: shuffles
// terminating at a 1 GbE node are ~10× slower than at a 10 GbE node, and
// concurrent shuffle waves contend for the same NICs.
//
// Re-rating is incremental by default: a flow change re-runs the
// water-filling only over the connected component of flows that share an
// interface (transitively) with the changed flow. Max-min allocation
// decomposes exactly across connected components of the flow↔interface
// graph, so the incremental rates equal a full recompute bit-for-bit;
// SetVerify makes the network check that equality after every change, and
// SetIncremental(false) restores the full O(all flows) recompute as the
// reference mode for equivalence tests.
package netsim

import (
	"fmt"
	"math"

	"rupam/internal/simx"
	"rupam/internal/stats"
)

const bytesEps = 1e-6

// loopbackRate is the service rate for flows whose source and destination
// are the same node; such transfers are memory copies, effectively free at
// the timescales simulated (but non-zero so event ordering stays sane).
const loopbackRate = 8e9 // 8 GB/s

// flowChunk is the arena block size for Flow allocation: flows are
// allocated in batches (handles escape to callers, so they are batched,
// never recycled).
const flowChunk = 64

// defaultIncremental seeds new networks' re-rating mode; tests flip it to
// compare whole runs under full-recompute reference semantics.
var defaultIncremental = true

// SetIncrementalDefault sets whether networks created from now on re-rate
// incrementally (the default) or with a full recompute per change. Not
// safe for concurrent use with New; intended for tests and the perf
// battery only.
func SetIncrementalDefault(on bool) { defaultIncremental = on }

// defaultVerify seeds new networks' self-check mode (see SetVerify).
var defaultVerify = false

// SetVerifyDefault makes every network created from now on verify each
// incremental re-rate against a full recompute. Test-only.
func SetVerifyDefault(on bool) { defaultVerify = on }

// Iface holds one node's NIC state.
type Iface struct {
	name       string
	egressCap  float64 // bytes/sec
	ingressCap float64 // bytes/sec

	egRate, inRate   float64 // currently allocated rates
	egUtil, inUtil   stats.TimeAvg
	egBytes, inBytes float64 // totals transferred

	flows []*Flow // non-loopback flows touching this iface (lazily compacted)
	dead  int     // done entries in flows
	visit uint64  // BFS stamp (== Network.visitGen when seen)

	// water-filling scratch, valid when the stamp equals Network.wfGen
	egStamp, inStamp   uint64
	wfEgRes, wfInRes   float64
	wfEgCount, wfInCnt int
	// cached quotients wfEgRes/count, refreshed by the min-scan each
	// round and re-derived immediately when a freeze mutates the link
	wfEgShare, wfInShare float64
}

// Name returns the node name of the interface.
func (i *Iface) Name() string { return i.name }

// EgressCap returns the NIC's outbound capacity in bytes/sec.
func (i *Iface) EgressCap() float64 { return i.egressCap }

// IngressCap returns the NIC's inbound capacity in bytes/sec.
func (i *Iface) IngressCap() float64 { return i.ingressCap }

// EgressRate returns the currently allocated outbound rate in bytes/sec.
func (i *Iface) EgressRate() float64 { return i.egRate }

// IngressRate returns the currently allocated inbound rate in bytes/sec.
func (i *Iface) IngressRate() float64 { return i.inRate }

// TotalSent returns the total bytes sent by this node.
func (i *Iface) TotalSent() float64 { return i.egBytes }

// TotalReceived returns the total bytes received by this node.
func (i *Iface) TotalReceived() float64 { return i.inBytes }

// Utilization returns the instantaneous utilization fraction of the busier
// direction.
func (i *Iface) Utilization() float64 {
	eg, in := 0.0, 0.0
	if i.egressCap > 0 {
		eg = i.egRate / i.egressCap
	}
	if i.ingressCap > 0 {
		in = i.inRate / i.ingressCap
	}
	return math.Max(eg, in)
}

// compact drops done flows from the adjacency list once they outnumber
// the live ones, preserving seq order.
func (i *Iface) compact() {
	if len(i.flows) < 16 || i.dead*2 <= len(i.flows) {
		return
	}
	live := i.flows[:0]
	for _, f := range i.flows {
		if !f.done {
			live = append(live, f)
		}
	}
	for j := len(live); j < len(i.flows); j++ {
		i.flows[j] = nil
	}
	i.flows = live
	i.dead = 0
}

// Flow is an in-progress transfer.
type Flow struct {
	src, dst  *Iface
	seq       uint64
	remaining float64
	rate      float64
	onDone    func()
	done      bool
	loopback  bool

	visit  uint64  // BFS stamp
	wfRate float64 // water-filling output scratch
}

// Remaining returns the bytes left to transfer as of the last network
// update (call Network.Sync first for an exact figure).
func (f *Flow) Remaining() float64 { return f.remaining }

// Rate returns the flow's currently allocated rate in bytes/sec.
func (f *Flow) Rate() float64 { return f.rate }

// Src returns the node name the flow transfers from.
func (f *Flow) Src() string { return f.src.name }

// Dst returns the node name the flow transfers to.
func (f *Flow) Dst() string { return f.dst.name }

// Done reports whether the flow has finished or been cancelled.
func (f *Flow) Done() bool { return f.done }

// Network is the collection of interfaces and active flows.
type Network struct {
	eng        *simx.Engine
	ifaces     map[string]*Iface
	order      []string // deterministic iteration order
	flows      []*Flow  // seq order; done flows compacted lazily
	live       int      // flows not yet done
	flowSeq    uint64
	lastUpdate float64
	timer      simx.Timer
	target     *Flow // flow the armed timer is for; force-completed on fire

	incremental bool
	verify      bool
	completeFn  func()

	// scratch, reused across re-rates
	visitGen uint64
	wfGen    uint64
	comp     []*Flow  // component / active netflow collection
	ifq      []*Iface // BFS queue
	wfEg     []*Iface // distinct egress links this waterfill
	wfIn     []*Iface // distinct ingress links this waterfill
	wfAct    []*Flow  // unfrozen flows, compacted between rounds
	finished []*Flow  // complete() scratch
	arena    []Flow   // allocation chunk
}

// New creates an empty network on the given engine.
func New(eng *simx.Engine) *Network {
	n := &Network{
		eng:         eng,
		ifaces:      make(map[string]*Iface),
		incremental: defaultIncremental,
		verify:      defaultVerify,
	}
	n.completeFn = n.complete
	return n
}

// SetIncremental switches between incremental per-component re-rating
// (true, the default) and a full recompute on every flow change (the
// reference mode for equivalence tests). Both produce identical rates.
func (n *Network) SetIncremental(on bool) { n.incremental = on }

// SetVerify makes every incremental re-rate check its rates against a
// full water-filling recompute and panic on any difference — the
// executable proof that incremental == full. Test-only: it makes every
// change O(all flows) again.
func (n *Network) SetVerify(on bool) { n.verify = on }

// AddNode registers a node with the given full-duplex NIC capacities in
// bytes/sec. It panics on duplicates or non-positive capacities.
func (n *Network) AddNode(name string, egress, ingress float64) *Iface {
	if _, ok := n.ifaces[name]; ok {
		panic(fmt.Sprintf("netsim: duplicate node %q", name))
	}
	if egress <= 0 || ingress <= 0 {
		panic(fmt.Sprintf("netsim: node %q with non-positive capacity", name))
	}
	i := &Iface{name: name, egressCap: egress, ingressCap: ingress}
	n.ifaces[name] = i
	n.order = append(n.order, name)
	return i
}

// Iface returns the interface for the named node, or nil.
func (n *Network) Iface(name string) *Iface { return n.ifaces[name] }

// SetCapacity re-rates a node's NIC mid-simulation (a transient
// degradation window, or its end). In-flight flows keep the bytes already
// transferred and are re-shared max-min fairly at the new capacity. It
// panics on an unknown node or non-positive capacity.
func (n *Network) SetCapacity(name string, egress, ingress float64) {
	i, ok := n.ifaces[name]
	if !ok {
		panic(fmt.Sprintf("netsim: unknown node %q", name))
	}
	if egress <= 0 || ingress <= 0 {
		panic(fmt.Sprintf("netsim: node %q: non-positive capacity", name))
	}
	n.advance()
	i.egressCap, i.ingressCap = egress, ingress
	n.reallocate(i, nil)
}

// ActiveFlows returns the number of in-progress flows.
func (n *Network) ActiveFlows() int { return n.live }

// newFlow hands out a flow from the arena chunk.
func (n *Network) newFlow() *Flow {
	if len(n.arena) == 0 {
		n.arena = make([]Flow, flowChunk)
	}
	f := &n.arena[0]
	n.arena = n.arena[1:]
	return f
}

// Start begins transferring bytes from src to dst; onDone fires at
// completion. Transfers with src == dst run at loopback speed. A
// non-positive byte count completes immediately (asynchronously).
func (n *Network) Start(src, dst string, bytes float64, onDone func()) *Flow {
	s, ok := n.ifaces[src]
	if !ok {
		panic(fmt.Sprintf("netsim: unknown source %q", src))
	}
	d, ok := n.ifaces[dst]
	if !ok {
		panic(fmt.Sprintf("netsim: unknown destination %q", dst))
	}
	n.flowSeq++
	f := n.newFlow()
	*f = Flow{src: s, dst: d, seq: n.flowSeq, remaining: bytes, onDone: onDone, loopback: src == dst}
	if bytes <= bytesEps {
		f.done = true
		n.eng.Schedule(0, func() {
			if onDone != nil {
				onDone()
			}
		})
		return f
	}
	n.advance()
	n.flows = append(n.flows, f)
	n.live++
	if f.loopback {
		// Loopback flows bypass the NICs entirely: fixed rate, no
		// component to re-rate — only the completion timer moves.
		f.rate = loopbackRate
		n.reallocate(nil, nil)
	} else {
		s.flows = append(s.flows, f)
		d.flows = append(d.flows, f)
		n.reallocate(s, d)
	}
	return f
}

// drop marks a flow done and maintains the live count and lazy
// compaction of the flow list and adjacency lists.
func (n *Network) drop(f *Flow) {
	f.done = true
	n.live--
	if !f.loopback {
		f.src.dead++
		f.dst.dead++
		f.src.compact()
		f.dst.compact()
	}
	if len(n.flows) >= 16 && n.live*2 < len(n.flows) {
		liveFlows := n.flows[:0]
		for _, g := range n.flows {
			if !g.done {
				liveFlows = append(liveFlows, g)
			}
		}
		for i := len(liveFlows); i < len(n.flows); i++ {
			n.flows[i] = nil
		}
		n.flows = liveFlows
	}
}

// Cancel aborts a flow without firing its callback, returning the bytes
// not yet transferred.
func (n *Network) Cancel(f *Flow) float64 {
	if f.done {
		return 0
	}
	n.advance()
	rem := f.remaining
	src, dst := f.src, f.dst
	if f.loopback {
		src, dst = nil, nil
	}
	n.drop(f)
	n.reallocate(src, dst)
	return rem
}

// Redirect cancels an in-flight flow and restarts its untransferred
// remainder from a different source node, preserving the destination and
// completion callback — a reader switching to a replica mid-transfer.
// Returns the replacement flow, or nil if the original had already
// finished (there is nothing left to redirect).
func (n *Network) Redirect(f *Flow, newSrc string) *Flow {
	if f == nil || f.done {
		return nil
	}
	dst, onDone := f.dst.name, f.onDone
	rem := n.Cancel(f)
	return n.Start(newSrc, dst, rem, onDone)
}

// Sync folds the elapsed interval into flow progress and utilization
// accounting without changing allocations. Call before reading Remaining
// or utilization statistics mid-simulation.
func (n *Network) Sync() {
	n.advance()
	// No membership or capacity change: rates are unchanged by
	// construction, only the completion timer needs re-arming against the
	// advanced remaining bytes (the re-arm arithmetic is part of the
	// simulation's float trajectory, so it is not skippable).
	if n.incremental {
		n.rearm()
	} else {
		n.reallocate(nil, nil)
	}
}

// AvgEgressRate returns the node's time-weighted average outbound rate in
// bytes/sec.
func (n *Network) AvgEgressRate(name string) float64 {
	n.Sync()
	return n.ifaces[name].egUtil.Value()
}

// AvgIngressRate returns the node's time-weighted average inbound rate in
// bytes/sec.
func (n *Network) AvgIngressRate(name string) float64 {
	n.Sync()
	return n.ifaces[name].inUtil.Value()
}

// advance applies transfer progress between lastUpdate and now.
func (n *Network) advance() {
	now := n.eng.Now()
	for _, name := range n.order {
		i := n.ifaces[name]
		i.egUtil.Observe(now, i.egRate)
		i.inUtil.Observe(now, i.inRate)
	}
	dt := now - n.lastUpdate
	if dt > 0 {
		for _, f := range n.flows {
			if f.done {
				continue
			}
			moved := f.rate * dt
			f.remaining -= moved
			f.src.egBytes += moved
			f.dst.inBytes += moved
		}
	}
	n.lastUpdate = now
}

// incrementalMinIfaces is the node-count floor below which incremental
// mode falls back to a full recompute. What makes a component BFS pay
// off is graph sparsity, and node count is its stable proxy: on a
// small cluster every shuffle wave connects nearly every node into one
// component, so the BFS re-discovers the whole graph on every event
// and only adds stamping overhead to the same waterfill. Large
// networks fragment into components a BFS can actually bound.
const incrementalMinIfaces = 32

// useIncremental reports whether a change should be re-rated through
// the component BFS or a full recompute. Either path computes
// bit-identical rates (verifyAgainstFull is the proof obligation), so
// this is purely a cost decision — except under verify, which forces
// the incremental machinery so the equivalence check actually
// exercises it at every network size.
func (n *Network) useIncremental() bool {
	return n.incremental && (n.verify || len(n.ifaces) > incrementalMinIfaces)
}

// reallocate recomputes max-min fair rates after a change touching the
// given interfaces (either may be nil) and re-arms the completion timer.
// In incremental mode only the connected component of flows reachable
// from the touched interfaces is re-rated; in reference mode everything
// is recomputed.
func (n *Network) reallocate(a, b *Iface) {
	if n.useIncremental() {
		n.reallocateComponent(a, b)
		if n.verify {
			n.verifyAgainstFull()
		}
		n.rearm()
		return
	}
	n.reallocateFull()
	n.rearm()
}

// reallocateFull is the reference algorithm: reset every interface,
// water-fill every active flow.
func (n *Network) reallocateFull() {
	for _, name := range n.order {
		i := n.ifaces[name]
		i.egRate, i.inRate = 0, 0
	}
	if n.live == 0 {
		return
	}
	// Active non-loopback flows, already in seq order.
	netFlows := n.comp[:0]
	for _, f := range n.flows {
		if f.done {
			continue
		}
		if f.loopback {
			f.rate = loopbackRate
		} else {
			f.rate = 0
			netFlows = append(netFlows, f)
		}
	}
	n.waterfill(netFlows)
	for _, f := range netFlows {
		f.rate = f.wfRate
		f.src.egRate += f.rate
		f.dst.inRate += f.rate
	}
	n.releaseComp(netFlows)
}

// reallocateComponent re-rates only the flows connected (through shared
// interfaces) to the changed interfaces. Max-min fairness decomposes
// across connected components, so untouched components keep their exact
// rates.
func (n *Network) reallocateComponent(a, b *Iface) {
	comp, ifaces := n.collectComponent(a, b)
	// Reset and re-rate only the touched interfaces; untouched components
	// would recompute to the very same sums, so skipping them is exact.
	for _, i := range ifaces {
		i.egRate, i.inRate = 0, 0
	}
	if len(comp) > 0 {
		n.waterfill(comp)
		for _, f := range comp {
			f.rate = f.wfRate
			f.src.egRate += f.rate
			f.dst.inRate += f.rate
		}
	}
	n.releaseComp(comp)
	n.ifq = n.ifq[:0]
}

// collectComponent gathers every live non-loopback flow transitively
// sharing an interface with the seeds, plus every interface visited.
// Returned slices alias the network's scratch buffers. The flow slice
// comes back in seq order — waterfill's round arithmetic depends on
// it — by filtering the globally seq-ordered flow list for stamped
// members rather than sorting BFS discovery order.
func (n *Network) collectComponent(a, b *Iface) ([]*Flow, []*Iface) {
	n.visitGen++
	gen := n.visitGen
	stamped := 0
	queue := n.ifq[:0]
	push := func(i *Iface) {
		if i != nil && i.visit != gen {
			i.visit = gen
			queue = append(queue, i)
		}
	}
	push(a)
	push(b)
	for head := 0; head < len(queue); head++ {
		i := queue[head]
		i.compact()
		for _, f := range i.flows {
			if f.done || f.visit == gen {
				continue
			}
			f.visit = gen
			stamped++
			push(f.src)
			push(f.dst)
		}
	}
	n.comp = n.filterStamped(n.comp[:0], gen, stamped)
	n.ifq = queue
	return n.comp, queue
}

// filterStamped appends the live flows carrying the given visit stamp
// to dst in global seq order (the order of n.flows) and returns it.
// The scan stops as soon as every stamped flow has been found.
func (n *Network) filterStamped(dst []*Flow, gen uint64, stamped int) []*Flow {
	if stamped == 0 {
		return dst
	}
	for _, f := range n.flows {
		if !f.done && f.visit == gen {
			dst = append(dst, f)
			if len(dst) == stamped {
				break
			}
		}
	}
	return dst
}

// releaseComp returns a flow slice to the scratch buffer.
func (n *Network) releaseComp(s []*Flow) {
	for i := range s {
		s[i] = nil
	}
	n.comp = s[:0]
}

// verifyAgainstFull recomputes every active flow's rate with the full
// water-filling and panics if any differs from the incrementally
// maintained rate. Pure check: it does not consume engine state, so a
// verified run's event trajectory is bit-identical to an unverified one.
func (n *Network) verifyAgainstFull() {
	all := make([]*Flow, 0, n.live)
	for _, f := range n.flows {
		if f.done || f.loopback {
			continue
		}
		all = append(all, f)
	}
	n.waterfill(all)
	for _, f := range all {
		if f.wfRate != f.rate {
			panic(fmt.Sprintf("netsim: incremental rate mismatch on %s→%s (seq %d): incremental %v, full %v",
				f.src.name, f.dst.name, f.seq, f.rate, f.wfRate))
		}
	}
	// Also check the per-iface aggregates the monitor reads.
	for _, name := range n.order {
		i := n.ifaces[name]
		var eg, in float64
		for _, f := range all {
			if f.src == i {
				eg += f.rate
			}
			if f.dst == i {
				in += f.rate
			}
		}
		if eg != i.egRate || in != i.inRate {
			panic(fmt.Sprintf("netsim: incremental iface rate mismatch on %s: eg %v vs %v, in %v vs %v",
				name, i.egRate, eg, i.inRate, in))
		}
	}
}

// rearm scans every active flow for the earliest completion and re-arms
// the single completion timer, exactly as the reference algorithm does.
func (n *Network) rearm() {
	n.timer.Cancel()
	n.timer = simx.Timer{}
	n.target = nil
	minT := math.Inf(1)
	var target *Flow
	for _, f := range n.flows {
		if f.done {
			continue
		}
		if f.rate > 0 {
			t := f.remaining / f.rate
			if t < minT {
				minT = t
				target = f
			}
		}
	}
	if target != nil {
		if minT < 0 {
			minT = 0
		}
		n.target = target
		n.timer = n.eng.Schedule(minT, n.completeFn)
	}
}

// waterfill assigns max-min fair rates (into wfRate) to flows constrained
// by source egress and destination ingress capacities. Link bookkeeping
// lives in generation-stamped scratch fields on the interfaces, so the
// pass allocates nothing on the steady path.
func (n *Network) waterfill(flows []*Flow) {
	if len(flows) == 0 {
		return
	}
	n.wfGen++
	gen := n.wfGen
	eg := n.wfEg[:0]
	in := n.wfIn[:0]
	for _, f := range flows {
		s, d := f.src, f.dst
		if s.egStamp != gen {
			s.egStamp = gen
			s.wfEgRes = s.egressCap
			s.wfEgCount = 0
			eg = append(eg, s)
		}
		s.wfEgCount++
		if d.inStamp != gen {
			d.inStamp = gen
			d.wfInRes = d.ingressCap
			d.wfInCnt = 0
			in = append(in, d)
		}
		d.wfInCnt++
	}
	// Unfrozen flows and unsaturated links are compacted between rounds
	// (relative order preserved), so each round only touches what is
	// still in play. The arithmetic — which shares are computed, in what
	// order — is exactly the reference algorithm's: frozen flows were
	// skipped before, now they are simply absent, and the min over link
	// shares is order-independent.
	act := append(n.wfAct[:0], flows...)
	for len(act) > 0 {
		// Find the bottleneck share among links with unfrozen flows.
		share := math.Inf(1)
		liveEg := eg[:0]
		for _, l := range eg {
			if l.wfEgCount > 0 {
				liveEg = append(liveEg, l)
				s := l.wfEgRes / float64(l.wfEgCount)
				l.wfEgShare = s
				if s < share {
					share = s
				}
			}
		}
		eg = liveEg
		liveIn := in[:0]
		for _, l := range in {
			if l.wfInCnt > 0 {
				liveIn = append(liveIn, l)
				s := l.wfInRes / float64(l.wfInCnt)
				l.wfInShare = s
				if s < share {
					share = s
				}
			}
		}
		in = liveIn
		if math.IsInf(share, 1) {
			break
		}
		// Freeze every unfrozen flow crossing a bottleneck link at the
		// bottleneck share. Link shares are the quotients cached by the
		// min-scan, re-derived on mutation — the same divisions the
		// reference performs inline, so shares stay bit-identical.
		keep := act[:0]
		for _, f := range act {
			le, li := f.src, f.dst
			if le.wfEgShare <= share+1e-9 || li.wfInShare <= share+1e-9 {
				f.wfRate = share
				le.wfEgRes -= share
				le.wfEgCount--
				if le.wfEgCount > 0 {
					le.wfEgShare = le.wfEgRes / float64(le.wfEgCount)
				}
				li.wfInRes -= share
				li.wfInCnt--
				if li.wfInCnt > 0 {
					li.wfInShare = li.wfInRes / float64(li.wfInCnt)
				}
			} else {
				keep = append(keep, f)
			}
		}
		if len(keep) == len(act) {
			// Numerical safety net: freeze everything at the current share.
			for _, f := range keep {
				f.wfRate = share
			}
			keep = keep[:0]
		}
		act = keep
	}
	n.wfEg = eg[:0]
	n.wfIn = in[:0]
	n.wfAct = act[:0]
}

// complete fires when the earliest flow(s) finish.
func (n *Network) complete() {
	n.timer = simx.Timer{}
	n.advance()
	// Force the targeted flow done: floating-point residue must not re-arm
	// a zero-length timer forever (see PSResource.complete).
	if t := n.target; t != nil && !t.done {
		t.remaining = 0
	}
	n.target = nil
	// The flow list is in seq order, so finished comes out sorted and the
	// callback order is deterministic by construction.
	finished := n.finished[:0]
	for _, f := range n.flows {
		if !f.done && f.remaining <= bytesEps {
			finished = append(finished, f)
		}
	}
	if n.useIncremental() {
		// Every finished flow's interfaces seed one component BFS; the
		// union recompute equals recomputing each touched component.
		n.visitGen++
		gen := n.visitGen
		queue := n.ifq[:0]
		for _, f := range finished {
			src, dst := f.src, f.dst
			n.drop(f)
			f.remaining = 0
			if f.loopback {
				continue
			}
			if src.visit != gen {
				src.visit = gen
				queue = append(queue, src)
			}
			if dst.visit != gen {
				dst.visit = gen
				queue = append(queue, dst)
			}
		}
		stamped := 0
		for head := 0; head < len(queue); head++ {
			i := queue[head]
			i.compact()
			for _, f := range i.flows {
				if f.done || f.visit == gen {
					continue
				}
				f.visit = gen
				stamped++
				for _, other := range [2]*Iface{f.src, f.dst} {
					if other.visit != gen {
						other.visit = gen
						queue = append(queue, other)
					}
				}
			}
		}
		n.ifq = queue
		for _, i := range queue {
			i.egRate, i.inRate = 0, 0
		}
		comp := n.filterStamped(n.comp[:0], gen, stamped)
		n.comp = comp
		if len(comp) > 0 {
			n.waterfill(comp)
			for _, f := range comp {
				f.rate = f.wfRate
				f.src.egRate += f.rate
				f.dst.inRate += f.rate
			}
		}
		n.releaseComp(comp)
		n.ifq = n.ifq[:0]
		if n.verify {
			n.verifyAgainstFull()
		}
		n.rearm()
	} else {
		for _, f := range finished {
			n.drop(f)
			f.remaining = 0
		}
		n.reallocateFull()
		n.rearm()
	}
	for _, f := range finished {
		if f.onDone != nil {
			f.onDone()
		}
	}
	for i := range finished {
		finished[i] = nil
	}
	n.finished = finished[:0]
}
