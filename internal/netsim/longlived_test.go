package netsim

import (
	"testing"

	"rupam/internal/simx"
)

// These tests pin the behaviors the streaming subsystem leans on: channel
// wires are long-lived flows with effectively-infinite budgets that the
// runtime rate-samples, cancels, and re-homes while they are in flight.

// TestLongLivedFlowReRates checks that a flow that never completes is
// re-rated as short flows join and leave its bottleneck link.
func TestLongLivedFlowReRates(t *testing.T) {
	eng := simx.NewEngine()
	n := New(eng)
	n.AddNode("src", 100, 1000)
	n.AddNode("dst", 1000, 1000)
	n.AddNode("d2", 1000, 1000)

	wire := n.Start("src", "dst", 1e15, nil)
	n.Sync()
	if wire.Rate() != 100 {
		t.Fatalf("alone on the link: rate %v, want 100", wire.Rate())
	}

	// A short flow joins the src egress at t=1 and leaves when its 100
	// bytes finish; with fair sharing that is 2 s at 50 B/s.
	var shortDone float64
	eng.At(1, func() {
		n.Start("src", "d2", 100, func() { shortDone = eng.Now() })
		n.Sync()
		if wire.Rate() != 50 {
			t.Fatalf("short flow joined: wire rate %v, want 50", wire.Rate())
		}
	})
	eng.At(2, func() {
		n.Sync()
		rem := wire.Remaining()
		// 1 s at 100 B/s + 1 s at 50 B/s shipped so far.
		if got := 1e15 - rem; !almost(got, 150, 1e-6) {
			t.Fatalf("wire shipped %v bytes by t=2, want 150", got)
		}
	})
	eng.RunUntil(10)
	if !almost(shortDone, 3, 1e-9) {
		t.Fatalf("short flow finished at %v, want 3", shortDone)
	}
	n.Sync()
	if wire.Rate() != 100 {
		t.Fatalf("short flow left: wire rate %v, want 100 again", wire.Rate())
	}
	if wire.Done() {
		t.Fatal("long-lived wire completed")
	}
}

// TestRedirectNeverCompletingFlow re-homes a long-lived flow mid-flight:
// the remaining budget, destination and (never-firing) callback must
// carry over, and the new source's NIC must shape the new rate.
func TestRedirectNeverCompletingFlow(t *testing.T) {
	eng := simx.NewEngine()
	n := New(eng)
	n.AddNode("old", 100, 1000)
	n.AddNode("new", 40, 1000)
	n.AddNode("dst", 1000, 1000)

	fired := false
	wire := n.Start("old", "dst", 1e15, func() { fired = true })
	eng.At(2, func() {
		n.Sync()
		moved := n.Redirect(wire, "new")
		if moved == nil {
			t.Fatal("Redirect returned nil for an in-flight flow")
		}
		if moved.Src() != "new" || moved.Dst() != "dst" {
			t.Fatalf("redirected endpoints %s→%s, want new→dst", moved.Src(), moved.Dst())
		}
		// 200 bytes shipped from the old host; the rest of the budget
		// survives the move.
		if got := 1e15 - moved.Remaining(); !almost(got, 200, 1e-6) {
			t.Fatalf("remaining budget lost in redirect: shipped %v, want 200", got)
		}
		n.Sync()
		if moved.Rate() != 40 {
			t.Fatalf("redirected rate %v, want the new host's 40", moved.Rate())
		}
		wire = moved
	})
	eng.RunUntil(5)
	if fired {
		t.Fatal("never-completing flow fired its completion callback")
	}
	if wire.Done() {
		t.Fatal("redirected wire reported done")
	}
	// The original flow object is cancelled by Redirect; the moved one
	// keeps shipping from the new host.
	n.Sync()
	if got := 1e15 - wire.Remaining(); !almost(got, 200+3*40, 1e-6) {
		t.Fatalf("shipped %v bytes by t=5, want 320", got)
	}
}
