package netsim

import (
	"math"
	"testing"
	"testing/quick"

	"rupam/internal/simx"
)

func almost(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func twoNodes(t *testing.T) (*simx.Engine, *Network) {
	t.Helper()
	eng := simx.NewEngine()
	n := New(eng)
	n.AddNode("a", 100, 100)
	n.AddNode("b", 100, 100)
	return eng, n
}

func TestSingleFlowTiming(t *testing.T) {
	eng, n := twoNodes(t)
	var done float64
	n.Start("a", "b", 500, func() { done = eng.Now() })
	eng.Run()
	if !almost(done, 5, 1e-9) {
		t.Fatalf("flow finished at %v, want 5", done)
	}
}

func TestEgressSharing(t *testing.T) {
	eng := simx.NewEngine()
	n := New(eng)
	n.AddNode("src", 100, 100)
	n.AddNode("d1", 1000, 1000)
	n.AddNode("d2", 1000, 1000)
	var t1, t2 float64
	n.Start("src", "d1", 100, func() { t1 = eng.Now() })
	n.Start("src", "d2", 100, func() { t2 = eng.Now() })
	eng.Run()
	// Both bottlenecked on src egress: 50 each → 2 s.
	if !almost(t1, 2, 1e-9) || !almost(t2, 2, 1e-9) {
		t.Fatalf("t1=%v t2=%v, want 2, 2", t1, t2)
	}
}

func TestIngressSharing(t *testing.T) {
	eng := simx.NewEngine()
	n := New(eng)
	n.AddNode("s1", 1000, 1000)
	n.AddNode("s2", 1000, 1000)
	n.AddNode("dst", 1000, 100)
	var t1, t2 float64
	n.Start("s1", "dst", 100, func() { t1 = eng.Now() })
	n.Start("s2", "dst", 100, func() { t2 = eng.Now() })
	eng.Run()
	if !almost(t1, 2, 1e-9) || !almost(t2, 2, 1e-9) {
		t.Fatalf("t1=%v t2=%v, want 2, 2", t1, t2)
	}
}

func TestMaxMinFairness(t *testing.T) {
	// Classic progressive-filling scenario: flows A→C and B→C contend at
	// C (cap 100); flow A→D is limited only by A's leftover egress.
	eng := simx.NewEngine()
	n := New(eng)
	n.AddNode("A", 150, 1000)
	n.AddNode("B", 1000, 1000)
	n.AddNode("C", 1000, 100)
	n.AddNode("D", 1000, 1000)
	fac := n.Start("A", "C", 1e9, nil)
	fbc := n.Start("B", "C", 1e9, nil)
	fad := n.Start("A", "D", 1e9, nil)
	n.Sync()
	// Max-min: A→C and B→C each get 50 at C. A→D gets A's remaining
	// egress: 150-50 = 100.
	if !almost(fac.Rate(), 50, 1e-6) || !almost(fbc.Rate(), 50, 1e-6) {
		t.Fatalf("C-bound rates: %v, %v; want 50, 50", fac.Rate(), fbc.Rate())
	}
	if !almost(fad.Rate(), 100, 1e-6) {
		t.Fatalf("A→D rate: %v, want 100", fad.Rate())
	}
}

func TestFlowCompletionFreesBandwidth(t *testing.T) {
	eng, n := twoNodes(t)
	var tShort, tLong float64
	n.Start("a", "b", 100, func() { tShort = eng.Now() })
	n.Start("a", "b", 300, func() { tLong = eng.Now() })
	eng.Run()
	// Shared at 50 until short finishes (t=2); long has 200 left at 100 → t=4.
	if !almost(tShort, 2, 1e-9) || !almost(tLong, 4, 1e-9) {
		t.Fatalf("short=%v long=%v", tShort, tLong)
	}
}

func TestCancelFlow(t *testing.T) {
	eng, n := twoNodes(t)
	var done float64
	f := n.Start("a", "b", 1000, nil)
	n.Start("a", "b", 200, func() { done = eng.Now() })
	eng.Schedule(1, func() {
		rem := n.Cancel(f)
		if !almost(rem, 950, 1e-6) {
			t.Errorf("cancel remaining = %v, want 950", rem)
		}
	})
	eng.Run()
	// Second flow: 50 by t=1, then 150 at rate 100 → t=2.5.
	if !almost(done, 2.5, 1e-6) {
		t.Fatalf("done = %v, want 2.5", done)
	}
}

func TestLoopbackFast(t *testing.T) {
	eng, n := twoNodes(t)
	var done float64
	n.Start("a", "a", 8e9, func() { done = eng.Now() })
	eng.Run()
	if !almost(done, 1, 1e-6) {
		t.Fatalf("loopback 8 GB took %v, want ~1 s", done)
	}
}

func TestZeroByteFlowAsync(t *testing.T) {
	eng, n := twoNodes(t)
	fired := false
	n.Start("a", "b", 0, func() { fired = true })
	if fired {
		t.Fatal("zero-byte flow fired synchronously")
	}
	eng.Run()
	if !fired {
		t.Fatal("zero-byte flow never completed")
	}
}

func TestIfaceAccounting(t *testing.T) {
	eng, n := twoNodes(t)
	n.Start("a", "b", 500, nil)
	eng.Run()
	n.Sync()
	a, b := n.Iface("a"), n.Iface("b")
	if !almost(a.TotalSent(), 500, 1e-6) || !almost(b.TotalReceived(), 500, 1e-6) {
		t.Fatalf("sent=%v received=%v", a.TotalSent(), b.TotalReceived())
	}
}

func TestUtilizationInstantaneous(t *testing.T) {
	eng, n := twoNodes(t)
	n.Start("a", "b", 1000, nil)
	n.Sync()
	if u := n.Iface("a").Utilization(); !almost(u, 1, 1e-9) {
		t.Fatalf("utilization = %v, want 1", u)
	}
	_ = eng
}

func TestAvgRates(t *testing.T) {
	eng, n := twoNodes(t)
	n.Start("a", "b", 100, nil) // 1 s at 100
	eng.Run()
	eng.Schedule(1, func() {}) // 1 s idle
	eng.Run()
	if got := n.AvgEgressRate("a"); !almost(got, 50, 1e-6) {
		t.Fatalf("avg egress = %v, want 50", got)
	}
	if got := n.AvgIngressRate("b"); !almost(got, 50, 1e-6) {
		t.Fatalf("avg ingress = %v, want 50", got)
	}
}

func TestDuplicateNodePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for duplicate node")
		}
	}()
	n := New(simx.NewEngine())
	n.AddNode("x", 1, 1)
	n.AddNode("x", 1, 1)
}

func TestUnknownNodePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for unknown source")
		}
	}()
	n := New(simx.NewEngine())
	n.AddNode("x", 1, 1)
	n.Start("nope", "x", 1, nil)
}

// Property: byte conservation — total bytes delivered equals the sum of
// flow sizes, for arbitrary flow matrices.
func TestQuickByteConservation(t *testing.T) {
	f := func(flows []uint16) bool {
		eng := simx.NewEngine()
		n := New(eng)
		names := []string{"n0", "n1", "n2", "n3"}
		for _, nm := range names {
			n.AddNode(nm, 50+float64(nm[1]-'0')*30, 60)
		}
		var want float64
		for i, b := range flows {
			src := names[i%4]
			dst := names[(i/4+1)%4]
			if src == dst {
				continue
			}
			bytes := float64(b%1000) + 1
			want += bytes
			n.Start(src, dst, bytes, nil)
		}
		eng.Run()
		n.Sync()
		var got float64
		for _, nm := range names {
			got += n.Iface(nm).TotalReceived()
		}
		return almost(got, want, 1e-3*(1+want))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: allocated rates never exceed any interface capacity.
func TestQuickCapacityRespected(t *testing.T) {
	f := func(flows []uint8) bool {
		eng := simx.NewEngine()
		n := New(eng)
		names := []string{"a", "b", "c"}
		caps := []float64{40, 70, 100}
		for i, nm := range names {
			n.AddNode(nm, caps[i], caps[i])
		}
		for i := range flows {
			src := names[i%3]
			dst := names[(i+1)%3]
			n.Start(src, dst, float64(flows[i])+1, nil)
		}
		n.Sync()
		for i, nm := range names {
			ifc := n.Iface(nm)
			if ifc.EgressRate() > caps[i]+1e-6 || ifc.IngressRate() > caps[i]+1e-6 {
				return false
			}
		}
		eng.Run()
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSetCapacityMidFlow(t *testing.T) {
	// A 1000-byte flow at 100 B/s would finish at t=10; halving the link at
	// t=5 leaves 500 bytes at 50 B/s, so it finishes at t=15.
	eng, n := twoNodes(t)
	var done float64
	n.Start("a", "b", 1000, func() { done = eng.Now() })
	eng.Schedule(5, func() { n.SetCapacity("a", 50, 50) })
	eng.Run()
	if !almost(done, 15, 1e-9) {
		t.Fatalf("flow finished at %v, want 15", done)
	}
}

func TestSetCapacityRestore(t *testing.T) {
	// Degrade to 25 B/s for 4 s then restore: 1000 bytes = 100 at t=0..4
	// (400 B), then 25 B/s would need 24 s; restoring at t=8 leaves 500
	// bytes at 100 B/s → done at 13.
	eng, n := twoNodes(t)
	var done float64
	n.Start("a", "b", 1000, func() { done = eng.Now() })
	eng.Schedule(4, func() { n.SetCapacity("b", 100, 25) })
	eng.Schedule(8, func() { n.SetCapacity("b", 100, 100) })
	eng.Run()
	if !almost(done, 13, 1e-9) {
		t.Fatalf("flow finished at %v, want 13", done)
	}
}

func TestSetCapacityUnknownNodePanics(t *testing.T) {
	_, n := twoNodes(t)
	defer func() {
		if recover() == nil {
			t.Fatal("unknown node accepted")
		}
	}()
	n.SetCapacity("ghost", 10, 10)
}

func TestSetCapacityNonPositivePanics(t *testing.T) {
	_, n := twoNodes(t)
	defer func() {
		if recover() == nil {
			t.Fatal("zero capacity accepted")
		}
	}()
	n.SetCapacity("a", 0, 10)
}
