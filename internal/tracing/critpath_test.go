package tracing_test

// End-to-end invariants over full simulated runs: the critical path must
// never exceed the makespan, must be at least as long as the longest
// single attempt, and its category breakdown must sum to its length — for
// multiple seeds under both schedulers. The golden test pins byte-level
// determinism of the Chrome export across identical runs.

import (
	"bytes"
	"math"
	"testing"

	"rupam/internal/experiments"
	"rupam/internal/task"
	"rupam/internal/tracing"
	"rupam/internal/workloads"
)

const eps = 1e-6

func smallSpec(scheduler string, seed uint64) experiments.RunSpec {
	return experiments.RunSpec{
		Workload:  "TeraSort",
		Params:    workloads.Params{InputGB: 0.25, Partitions: 8, Iterations: 1},
		Scheduler: scheduler,
		Seed:      seed,
	}
}

func longestAttempt(app *task.Application) float64 {
	longest := 0.0
	for _, t := range app.AllTasks() {
		for _, m := range t.Attempts {
			if d := m.Duration(); d > longest {
				longest = d
			}
		}
	}
	return longest
}

func TestCriticalPathInvariants(t *testing.T) {
	for _, sched := range []string{experiments.SchedSpark, experiments.SchedRUPAM} {
		for seed := uint64(1); seed <= 3; seed++ {
			spec := smallSpec(sched, seed)
			spec.Tracer = tracing.NewCollector()
			res := experiments.Run(spec)

			cp, err := tracing.Analyze(res.App)
			if err != nil {
				t.Fatalf("%s seed %d: %v", sched, seed, err)
			}
			if cp.Length > res.Duration+eps {
				t.Errorf("%s seed %d: path %.6fs exceeds makespan %.6fs", sched, seed, cp.Length, res.Duration)
			}
			if la := longestAttempt(res.App); cp.Length+eps < la {
				t.Errorf("%s seed %d: path %.6fs shorter than longest attempt %.6fs", sched, seed, cp.Length, la)
			}
			sum := 0.0
			for _, v := range cp.Categories {
				sum += v
			}
			if math.Abs(sum-cp.Length) > 1e-3 {
				t.Errorf("%s seed %d: breakdown sums to %.6fs, path length %.6fs", sched, seed, sum, cp.Length)
			}
			if len(cp.Segments) == 0 {
				t.Errorf("%s seed %d: empty critical path", sched, seed)
			}
			for _, seg := range cp.Segments {
				if seg.Wait < -eps || seg.Run < -eps || seg.Slack < -eps {
					t.Errorf("%s seed %d: segment task %d negative (wait %.6f run %.6f slack %.6f)",
						sched, seed, seg.TaskID, seg.Wait, seg.Run, seg.Slack)
				}
			}

			// Every launch committed exactly one decision record.
			if got, want := spec.Tracer.DecisionCount(), res.Launches; got != want {
				t.Errorf("%s seed %d: %d decisions for %d launches", sched, seed, got, want)
			}
			var buf bytes.Buffer
			if err := spec.Tracer.WriteChromeTrace(&buf); err != nil {
				t.Fatalf("%s seed %d: export: %v", sched, seed, err)
			}
			if err := tracing.ValidateChromeTrace(buf.Bytes()); err != nil {
				t.Errorf("%s seed %d: invalid trace: %v", sched, seed, err)
			}
		}
	}
}

// TestAnalyzeRejectsIncompleteApp pins the error paths: an app with no
// tasks, and one whose tasks never ran.
func TestAnalyzeRejectsIncompleteApp(t *testing.T) {
	if _, err := tracing.Analyze(&task.Application{}); err == nil {
		t.Error("empty application accepted")
	}
	app := &task.Application{Jobs: []*task.Job{{Stages: []*task.Stage{
		{Tasks: []*task.Task{{ID: 1}}},
	}}}}
	if _, err := tracing.Analyze(app); err == nil {
		t.Error("application with unfinished tasks accepted")
	}
}

// TestTraceGolden runs the identical traced simulation twice and requires
// the exported bytes to be identical — the determinism contract the
// chaos-fingerprint harness relies on.
func TestTraceGolden(t *testing.T) {
	export := func(scheduler string) []byte {
		spec := smallSpec(scheduler, 1)
		spec.Tracer = tracing.NewCollector()
		experiments.Run(spec)
		var buf bytes.Buffer
		if err := spec.Tracer.WriteChromeTrace(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	for _, sched := range []string{experiments.SchedSpark, experiments.SchedRUPAM} {
		a, b := export(sched), export(sched)
		if !bytes.Equal(a, b) {
			t.Errorf("%s: trace export not byte-identical across identical runs (%d vs %d bytes)",
				sched, len(a), len(b))
		}
	}
}

// TestTracedRunMatchesUntraced pins zero behavioral overhead: the same
// spec with and without a collector must produce identical results.
func TestTracedRunMatchesUntraced(t *testing.T) {
	for _, sched := range []string{experiments.SchedSpark, experiments.SchedRUPAM} {
		plain := experiments.Run(smallSpec(sched, 2))
		spec := smallSpec(sched, 2)
		spec.Tracer = tracing.NewCollector()
		traced := experiments.Run(spec)
		if plain.Duration != traced.Duration || plain.Launches != traced.Launches {
			t.Errorf("%s: tracing changed the run: %.9fs/%d launches vs %.9fs/%d launches",
				sched, plain.Duration, plain.Launches, traced.Duration, traced.Launches)
		}
	}
}
