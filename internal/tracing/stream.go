package tracing

// Streaming-operator events: phase spans on a per-node "stream" track
// (operator running windows, drains, state handoffs) plus migration
// instants. Placement decisions reuse the scheduler Decision audit — the
// placer records one Decision per operator with the candidate nodes and
// their rejection reasons.

// StreamSpan records a streaming-operator phase window [now, now+duration]
// on the node's stream track: "run" between placement/migration
// boundaries, "drain" and "handoff" during a migration. duration <= 0
// means open-ended (still running at the end of the run); the exporter
// closes it at the trace's end.
func (c *Collector) StreamSpan(node, op, phase, detail string, duration float64) {
	if c == nil {
		return
	}
	start := c.now()
	end := -1.0
	if duration > 0 {
		end = start + duration
	}
	c.StreamSpanAt(node, op, phase, detail, start, end)
}

// StreamSpanAt is StreamSpan with an explicit window, for phases whose
// length is only known at completion — a drain's duration depends on the
// backlog, so the runtime records the span once the drain finishes.
// end < 0 means open-ended.
func (c *Collector) StreamSpanAt(node, op, phase, detail string, start, end float64) {
	if c == nil {
		return
	}
	if end > c.maxTime {
		c.maxTime = end
	}
	args := map[string]interface{}{"op": op}
	if detail != "" {
		args["detail"] = detail
	}
	c.spans = append(c.spans, span{
		seq: c.nextSeq(), start: start, end: end,
		name: op + "/" + phase, cat: "stream", node: node, args: args,
	})
}

// OperatorMigrated records a completed operator migration on the
// destination node's stream track.
func (c *Collector) OperatorMigrated(op, from, to, reason string, tookSec float64) {
	if c == nil {
		return
	}
	c.instants = append(c.instants, instant{
		seq: c.nextSeq(), time: c.now(),
		name: "migrated " + op, cat: "stream", node: to,
		args: map[string]interface{}{
			"from": from, "to": to, "reason": reason, "took_sec": tookSec,
		},
	})
}
