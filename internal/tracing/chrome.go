package tracing

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Chrome trace_event export. Track layout:
//
//	pid 1            driver — tid 1 jobs, tid 2 stages, tid 3 scheduler
//	pid 2+i          node i in registration order — tid s+1 for core slot s,
//	                 tid 999 for the fault/executor-status track
//
// Events carry ts/dur in microseconds of virtual time. Output bytes are
// deterministic: events are stably sorted by (ts, emit sequence) and
// serialized with encoding/json, which orders object keys.

const (
	driverPid    = 1
	tidJobs      = 1
	tidStages    = 2
	tidScheduler = 3
	tidStream    = 998
	tidFaults    = 999
)

type chromeEvent struct {
	Name string                 `json:"name"`
	Cat  string                 `json:"cat,omitempty"`
	Ph   string                 `json:"ph"`
	Ts   float64                `json:"ts"`
	Dur  *float64               `json:"dur,omitempty"`
	S    string                 `json:"s,omitempty"`
	Pid  int                    `json:"pid"`
	Tid  int                    `json:"tid"`
	Args map[string]interface{} `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents []chromeEvent `json:"traceEvents"`
}

// keyed pairs an event with its deterministic sort key.
type keyed struct {
	ev  chromeEvent
	seq uint64
	sub int // orders events derived from the same source record
}

func usec(t float64) float64 { return t * 1e6 }

func durPtr(start, end float64) *float64 {
	d := usec(end - start)
	if d < 0 {
		d = 0
	}
	return &d
}

// nodePid returns the pid for a node name, falling back to the driver pid
// for nodes that were never registered (defensive; should not happen).
func (c *Collector) nodePid(name string) int {
	if i, ok := c.nodeIdx[name]; ok {
		return 2 + i
	}
	return driverPid
}

// WriteChromeTrace serializes everything collected so far as Chrome
// trace_event JSON (the {"traceEvents": [...]} object form).
func (c *Collector) WriteChromeTrace(w io.Writer) error {
	if c == nil {
		return fmt.Errorf("tracing: collector disabled; nothing to export")
	}

	var meta []chromeEvent
	metaName := func(pid int, name string) {
		meta = append(meta, chromeEvent{
			Name: "process_name", Ph: "M", Pid: pid, Tid: 0,
			Args: map[string]interface{}{"name": name},
		})
	}
	metaThread := func(pid, tid int, name string) {
		meta = append(meta, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: pid, Tid: tid,
			Args: map[string]interface{}{"name": name},
		})
	}
	metaName(driverPid, "driver")
	metaThread(driverPid, tidJobs, "jobs")
	metaThread(driverPid, tidStages, "stages")
	metaThread(driverPid, tidScheduler, "scheduler")
	for i, n := range c.nodes {
		pid := 2 + i
		metaName(pid, n.name)
		slots := c.maxSlots[n.name]
		if slots < n.cores {
			slots = n.cores
		}
		for s := 0; s < slots; s++ {
			metaThread(pid, s+1, fmt.Sprintf("slot %d", s))
		}
		metaThread(pid, tidStream, "stream")
		metaThread(pid, tidFaults, "faults")
	}

	var evs []keyed

	for _, sp := range c.spans {
		end := sp.end
		if end < 0 {
			end = c.maxTime
		}
		pid, tid := driverPid, tidJobs
		switch sp.cat {
		case "stage":
			tid = tidStages
		case "fault":
			pid, tid = c.nodePid(sp.node), tidFaults
		case "stream":
			pid, tid = c.nodePid(sp.node), tidStream
		}
		evs = append(evs, keyed{seq: sp.seq, ev: chromeEvent{
			Name: sp.name, Cat: sp.cat, Ph: "X",
			Ts: usec(sp.start), Dur: durPtr(sp.start, end),
			Pid: pid, Tid: tid, Args: sp.args,
		}})
	}

	for _, in := range c.instants {
		pid, tid := driverPid, tidScheduler
		if in.node != "" {
			pid, tid = c.nodePid(in.node), tidFaults
			if in.cat == "stream" {
				tid = tidStream
			}
		}
		evs = append(evs, keyed{seq: in.seq, ev: chromeEvent{
			Name: in.name, Cat: in.cat, Ph: "i", S: "t",
			Ts: usec(in.time), Pid: pid, Tid: tid, Args: in.args,
		}})
	}

	for _, a := range c.attempts {
		end := a.End
		if end == 0 {
			end = c.maxTime
		}
		pid, tid := c.nodePid(a.Node), a.slot+1
		name := fmt.Sprintf("task %d", a.TaskID)
		if a.Speculative {
			name += " (spec)"
		}
		args := map[string]interface{}{
			"stage":    a.StageID,
			"job":      a.JobID,
			"index":    a.Index,
			"locality": a.Locality,
			"outcome":  a.Outcome,
		}
		if a.QueuedAt >= 0 {
			args["queued_wait_s"] = a.Launch - a.QueuedAt
		}
		evs = append(evs, keyed{seq: a.seq, ev: chromeEvent{
			Name: name, Cat: "task", Ph: "X",
			Ts: usec(a.Launch), Dur: durPtr(a.Launch, end),
			Pid: pid, Tid: tid, Args: args,
		}})
		for j, p := range a.phases {
			pend := end
			if j+1 < len(a.phases) {
				pend = a.phases[j+1].start
			}
			evs = append(evs, keyed{seq: a.seq, sub: j + 1, ev: chromeEvent{
				Name: p.name, Cat: "phase", Ph: "X",
				Ts: usec(p.start), Dur: durPtr(p.start, pend),
				Pid: pid, Tid: tid,
			}})
		}
	}

	for _, d := range c.decisions {
		rej := map[string]interface{}{}
		for _, cand := range d.Candidates {
			if cand.Rejection != "" {
				rej[fmt.Sprintf("task %d", cand.TaskID)] = cand.Rejection
			}
		}
		args := map[string]interface{}{
			"node":       d.Node,
			"heuristic":  d.Heuristic,
			"locality":   d.WinnerLocality,
			"candidates": len(d.Candidates),
		}
		if d.Queue != "" {
			args["queue"] = d.Queue
		}
		if d.App != "" {
			args["app"] = d.App
		}
		if d.Pool != "" {
			args["pool"] = d.Pool
		}
		if d.Speculative {
			args["speculative"] = true
		}
		if len(rej) > 0 {
			args["rejected"] = rej
		}
		evs = append(evs, keyed{seq: d.seq, ev: chromeEvent{
			Name: fmt.Sprintf("%s: task %d → %s", d.Scheduler, d.Winner, d.Node),
			Cat:  "decision", Ph: "i", S: "t",
			Ts: usec(d.Time), Pid: driverPid, Tid: tidScheduler, Args: args,
		}})
	}

	sort.SliceStable(evs, func(i, j int) bool {
		a, b := &evs[i], &evs[j]
		if a.ev.Ts != b.ev.Ts {
			return a.ev.Ts < b.ev.Ts
		}
		if a.seq != b.seq {
			return a.seq < b.seq
		}
		return a.sub < b.sub
	})

	out := chromeTrace{TraceEvents: make([]chromeEvent, 0, len(meta)+len(evs))}
	out.TraceEvents = append(out.TraceEvents, meta...)
	for _, k := range evs {
		out.TraceEvents = append(out.TraceEvents, k.ev)
	}

	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// ValidateChromeTrace checks that data parses as trace_event JSON in the
// object form and that every event carries the fields its phase requires.
func ValidateChromeTrace(data []byte) error {
	var raw struct {
		TraceEvents []map[string]interface{} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &raw); err != nil {
		return fmt.Errorf("trace JSON: %w", err)
	}
	if len(raw.TraceEvents) == 0 {
		return fmt.Errorf("trace JSON: no traceEvents")
	}
	for i, ev := range raw.TraceEvents {
		name, ok := ev["name"].(string)
		if !ok || name == "" {
			return fmt.Errorf("event %d: missing name", i)
		}
		ph, ok := ev["ph"].(string)
		if !ok || ph == "" {
			return fmt.Errorf("event %d (%s): missing ph", i, name)
		}
		if _, ok := ev["pid"].(float64); !ok {
			return fmt.Errorf("event %d (%s): missing pid", i, name)
		}
		if _, ok := ev["tid"].(float64); !ok {
			return fmt.Errorf("event %d (%s): missing tid", i, name)
		}
		switch ph {
		case "M":
			// metadata carries no timestamp requirement
		case "X":
			ts, ok := ev["ts"].(float64)
			if !ok || ts < 0 {
				return fmt.Errorf("event %d (%s): complete event missing ts", i, name)
			}
			dur, ok := ev["dur"].(float64)
			if !ok || dur < 0 {
				return fmt.Errorf("event %d (%s): complete event missing dur", i, name)
			}
		case "i":
			if _, ok := ev["ts"].(float64); !ok {
				return fmt.Errorf("event %d (%s): instant missing ts", i, name)
			}
			if s, ok := ev["s"].(string); !ok || s == "" {
				return fmt.Errorf("event %d (%s): instant missing scope", i, name)
			}
		default:
			return fmt.Errorf("event %d (%s): unexpected phase %q", i, name, ph)
		}
	}
	return nil
}
