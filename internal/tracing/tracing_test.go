package tracing

import (
	"bytes"
	"strings"
	"testing"

	"rupam/internal/simx"
	"rupam/internal/task"
)

// TestNilCollectorIsInert pins the disabled state: every entry point must
// be callable on a nil collector (and the nil attempt/decision handles it
// returns) without panicking or observing anything.
func TestNilCollectorIsInert(t *testing.T) {
	var c *Collector
	if c.Enabled() {
		t.Fatal("nil collector reports enabled")
	}
	c.Bind(simx.NewEngine())
	c.RegisterNode("n1", 4)
	c.JobBegin(0, "j")
	c.JobEnd(0)
	c.StageBegin(&task.Stage{ID: 1})
	c.StageEnd(1)
	c.TaskQueued(7)
	c.SpeculatableMarked(7)
	c.ExecutorLost("n1", "test")
	c.ExecutorRejoined("n1")
	c.JobAborted("test")
	c.FaultSpan("n1", "crash", "", 5)

	a := c.AttemptStarted(&task.Task{ID: 7}, &task.Stage{ID: 1}, "n1", "ANY", false)
	if a != nil {
		t.Fatal("nil collector returned a live attempt trace")
	}
	a.Phase("compute")
	a.Finish("success")

	d := c.NewDecision("spark", "n1")
	if d != nil {
		t.Fatal("nil collector returned a live decision")
	}
	d.SetQueue("cpu", 1, 0)
	d.Candidate(7, "ANY", "", "")
	d.Note("ignored %d", 1)
	d.SetWinner(7, "delay-scheduling", "ANY", false)
	d.Commit()

	if c.EventCount() != 0 || c.DecisionCount() != 0 || c.TracedTasks() != 0 {
		t.Fatal("nil collector counted events")
	}
	if err := c.WriteChromeTrace(&bytes.Buffer{}); err == nil {
		t.Fatal("nil collector export should error")
	}
}

// fixture builds a collector over a tiny scripted run: two nodes, one job
// with one stage of two tasks, one fault window, one decision per launch.
func fixture(t *testing.T) *Collector {
	t.Helper()
	eng := simx.NewEngine()
	c := NewCollector()
	c.Bind(eng)
	c.RegisterNode("n1", 2)
	c.RegisterNode("n2", 1)

	st := &task.Stage{ID: 1, Name: "map", JobID: 0, Tasks: make([]*task.Task, 2)}
	t1 := &task.Task{ID: 10, StageID: 1, Index: 0}
	t2 := &task.Task{ID: 11, StageID: 1, Index: 1}

	var a1, a2 *AttemptTrace
	eng.At(0, func() {
		c.JobBegin(0, "fixture")
		c.StageBegin(st)
		c.TaskQueued(10)
		c.TaskQueued(11)
	})
	eng.At(1, func() {
		d := c.NewDecision("rupam", "n1")
		d.SetQueue("cpu", 3.2, 0.5)
		d.Candidate(11, "ANY", "", "")
		d.SetWinner(10, "process-local", "PROCESS_LOCAL", false)
		d.Commit()
		a1 = c.AttemptStarted(t1, st, "n1", "PROCESS_LOCAL", false)
	})
	eng.At(1.5, func() {
		a1.Phase("compute")
		d := c.NewDecision("rupam", "n2")
		d.SetWinner(11, "best-locality", "ANY", false)
		d.Commit()
		a2 = c.AttemptStarted(t2, st, "n2", "ANY", false)
	})
	eng.At(2, func() { c.FaultSpan("n2", "nic-degrade", "×0.50 for 3s", 3) })
	eng.At(4, func() {
		a1.Finish("success")
		a2.Phase("shuffle-write")
	})
	eng.At(6, func() {
		a2.Finish("success")
		c.StageEnd(1)
		c.JobEnd(0)
	})
	eng.Run()
	return c
}

func TestCollectorCounts(t *testing.T) {
	c := fixture(t)
	if got := c.DecisionCount(); got != 2 {
		t.Fatalf("decisions = %d, want 2", got)
	}
	if got := c.TracedTasks(); got != 2 {
		t.Fatalf("traced tasks = %d, want 2", got)
	}
	if c.EventCount() == 0 {
		t.Fatal("no events recorded")
	}
}

func TestChromeExportValidates(t *testing.T) {
	c := fixture(t)
	var buf bytes.Buffer
	if err := c.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if err := ValidateChromeTrace(buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`"traceEvents"`, "task 10", "task 11", "stage 1 (map)",
		"job 0 (fixture)", "nic-degrade", "process-local",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("export missing %q", want)
		}
	}
}

// TestChromeExportDeterministic builds the same scripted run twice and
// requires byte-identical exports — the golden-file property the bigger
// end-to-end test in critpath_test.go checks over full simulations.
func TestChromeExportDeterministic(t *testing.T) {
	var b1, b2 bytes.Buffer
	if err := fixture(t).WriteChromeTrace(&b1); err != nil {
		t.Fatal(err)
	}
	if err := fixture(t).WriteChromeTrace(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatalf("exports differ: %d vs %d bytes", b1.Len(), b2.Len())
	}
}

func TestOpenSpansCloseAtTraceEnd(t *testing.T) {
	eng := simx.NewEngine()
	c := NewCollector()
	c.Bind(eng)
	c.RegisterNode("n1", 1)
	eng.At(1, func() { c.FaultSpan("n1", "crash", "permanent", 0) })
	eng.At(5, func() { c.ExecutorLost("n1", "heartbeat timeout") })
	eng.Run()

	var buf bytes.Buffer
	if err := c.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if err := ValidateChromeTrace(buf.Bytes()); err != nil {
		t.Fatalf("open span exported invalid: %v", err)
	}
	// The crash span must span [1s, 5s] — closed at the last event, never
	// negative or absent.
	if !strings.Contains(buf.String(), `"dur":4000000`) {
		t.Fatalf("open crash span not closed at trace end:\n%s", buf.String())
	}
}

func TestSpeculatableMarkDedups(t *testing.T) {
	eng := simx.NewEngine()
	c := NewCollector()
	c.Bind(eng)
	c.SpeculatableMarked(3)
	c.SpeculatableMarked(3)
	c.SpeculatableMarked(4)
	if got := len(c.instants); got != 2 {
		t.Fatalf("speculation instants = %d, want 2", got)
	}
}

func TestSetWinnerRelabelsLosers(t *testing.T) {
	c := NewCollector()
	c.Bind(simx.NewEngine())
	d := c.NewDecision("rupam", "n1")
	d.Candidate(1, "ANY", "", "")
	d.Candidate(2, "ANY", "no-mem-fit", "needs 2GB")
	d.Candidate(3, "NODE_LOCAL", "", "")
	d.SetWinner(3, "best-locality", "NODE_LOCAL", false)
	d.Commit()

	got := map[int]string{}
	for _, cand := range c.Decisions()[0].Candidates {
		got[cand.TaskID] = cand.Rejection
	}
	if got[1] != "lost-to-winner" {
		t.Errorf("task 1 rejection = %q, want lost-to-winner", got[1])
	}
	if got[2] != "no-mem-fit" {
		t.Errorf("task 2 rejection = %q, want no-mem-fit (explicit reasons keep)", got[2])
	}
	if got[3] != "" {
		t.Errorf("winner rejection = %q, want empty", got[3])
	}
}

func TestExplain(t *testing.T) {
	c := fixture(t)
	var buf bytes.Buffer
	if err := c.Explain(&buf, 10); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"task 10", "PROCESS_LOCAL", "process-local", "success", "compute",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("explain missing %q in:\n%s", want, out)
		}
	}
	if err := c.Explain(&buf, 999); err == nil {
		t.Fatal("explain of unknown task should error")
	}
}

func TestValidateChromeTraceRejectsGarbage(t *testing.T) {
	bad := [][]byte{
		nil,
		[]byte("not json"),
		[]byte(`{"traceEvents":[]}`),
		[]byte(`{"traceEvents":[{"ph":"X","pid":1,"tid":1,"ts":0,"dur":1}]}`),     // no name
		[]byte(`{"traceEvents":[{"name":"a","ph":"X","pid":1,"tid":1,"ts":-4}]}`), // negative ts
		[]byte(`{"traceEvents":[{"name":"a","ph":"i","pid":1,"tid":1,"ts":0}]}`),  // instant without scope
		[]byte(`{"traceEvents":[{"name":"a","ph":"Q","pid":1,"tid":1,"ts":0}]}`),  // unknown phase
	}
	for i, data := range bad {
		if err := ValidateChromeTrace(data); err == nil {
			t.Errorf("case %d: invalid trace accepted", i)
		}
	}
}
