package tracing

import (
	"fmt"
	"io"
)

// Candidate is one task a scheduler examined while filling an offer.
// Rejection is empty for the winner and names the gate that eliminated
// every loser ("no-mem-fit", "lock-incompatible", "waiting-for-locality",
// ...); Detail carries the scheduler's per-candidate evidence, e.g. the
// CharDB record behind a RUPAM verdict.
type Candidate struct {
	TaskID    int
	Locality  string
	Rejection string
	Detail    string
}

// Decision is the audit record of one placement round: the node offer
// being filled, every candidate considered, and the winner (if any) with
// the heuristic that selected it. Schedulers build a Decision per offer
// and Commit it only when a launch actually happened, so committed
// decisions correspond one-to-one with launches.
//
// A nil *Decision (tracing disabled) ignores all calls, letting the
// scheduler hot path stay free of conditionals beyond one nil check when
// formatting per-candidate detail.
type Decision struct {
	c *Collector

	seq       uint64
	Time      float64
	Scheduler string
	Node      string

	// App and Pool scope the decision to one application and its FAIR
	// pool in multi-tenant runs; both are empty for single-app runs.
	App  string
	Pool string

	// Queue names the resource dimension whose offer is being filled
	// (RUPAM) or is empty for slot-based scheduling (default Spark).
	Queue     string
	OfferCap  float64
	OfferUtil float64

	Winner         int // task ID; -1 while unset
	Heuristic      string
	WinnerLocality string
	Speculative    bool

	Candidates []Candidate
	Notes      []string
}

// NewDecision opens a placement-decision record for an offer on node.
func (c *Collector) NewDecision(scheduler, node string) *Decision {
	if c == nil {
		return nil
	}
	return &Decision{c: c, Time: c.now(), Scheduler: scheduler, Node: node, Winner: -1}
}

// SetScope attributes the decision to an application and its FAIR pool
// (multi-tenant runs; the spark runtime applies it from its config labels).
func (d *Decision) SetScope(app, pool string) {
	if d == nil {
		return
	}
	d.App, d.Pool = app, pool
}

// SetQueue records the resource queue (and the offer's capability/
// utilization scores) that produced the node offer.
func (d *Decision) SetQueue(queue string, cap, util float64) {
	if d == nil {
		return
	}
	d.Queue, d.OfferCap, d.OfferUtil = queue, cap, util
}

// Candidate records one examined task. An empty rejection means the task
// passed every gate (it may still lose on locality; SetWinner settles it).
func (d *Decision) Candidate(taskID int, locality, rejection, detail string) {
	if d == nil {
		return
	}
	d.Candidates = append(d.Candidates, Candidate{
		TaskID: taskID, Locality: locality, Rejection: rejection, Detail: detail,
	})
}

// Note attaches a free-form remark (e.g. a stage skipped for backoff).
func (d *Decision) Note(format string, args ...interface{}) {
	if d == nil {
		return
	}
	d.Notes = append(d.Notes, fmt.Sprintf(format, args...))
}

// SetWinner marks the chosen task and the heuristic that chose it. Every
// other gate-passing candidate is relabeled as having lost to the winner.
func (d *Decision) SetWinner(taskID int, heuristic, locality string, speculative bool) {
	if d == nil {
		return
	}
	d.Winner, d.Heuristic, d.WinnerLocality, d.Speculative = taskID, heuristic, locality, speculative
	found := false
	for i := range d.Candidates {
		c := &d.Candidates[i]
		if c.TaskID == taskID && c.Rejection == "" {
			found = true
		} else if c.Rejection == "" {
			c.Rejection = "lost-to-winner"
		}
	}
	if !found {
		d.Candidates = append(d.Candidates, Candidate{TaskID: taskID, Locality: locality})
	}
}

// Commit files the decision with the collector; uncommitted decisions
// (offers that produced no launch) are simply dropped, bounding the audit
// to one record per launch.
func (d *Decision) Commit() {
	if d == nil {
		return
	}
	d.seq = d.c.nextSeq()
	d.c.decisions = append(d.c.decisions, d)
}

// ---- Explain ---------------------------------------------------------------

// explainRejectionCap bounds how many rejection rounds Explain prints per
// task; a long run can reject the same task in hundreds of rounds.
const explainRejectionCap = 12

// Explain writes a plain-text audit for the task: its recorded attempts,
// the committed decisions that placed it, and (capped) the decisions that
// considered and rejected it.
func (c *Collector) Explain(w io.Writer, taskID int) error {
	if c == nil {
		return fmt.Errorf("tracing: collector disabled; run with tracing enabled to explain placements")
	}
	attempts := c.attemptsByTask[taskID]
	var placed, rejected []*Decision
	for _, d := range c.decisions {
		if d.Winner == taskID {
			placed = append(placed, d)
			continue
		}
		for _, cand := range d.Candidates {
			if cand.TaskID == taskID {
				rejected = append(rejected, d)
				break
			}
		}
	}
	if len(attempts) == 0 && len(placed) == 0 && len(rejected) == 0 {
		return fmt.Errorf("tracing: no records for task %d (unknown task, or it never reached a scheduler)", taskID)
	}

	fmt.Fprintf(w, "== decision audit for task %d ==\n", taskID)
	fmt.Fprintf(w, "attempts: %d\n", len(attempts))
	for i, a := range attempts {
		wait := ""
		if a.QueuedAt >= 0 {
			wait = fmt.Sprintf(" (queued %.2fs earlier)", a.Launch-a.QueuedAt)
		}
		spec := ""
		if a.Speculative {
			spec = " speculative"
		}
		fmt.Fprintf(w, "  a%d%s on %-8s %-13s launched %8.2fs%s", i, spec, a.Node, a.Locality, a.Launch, wait)
		if a.End > 0 {
			fmt.Fprintf(w, "  ended %8.2fs  outcome %s\n", a.End, a.Outcome)
		} else {
			fmt.Fprintf(w, "  (still running at trace end)\n")
		}
		for j, p := range a.phases {
			end := a.End
			if j+1 < len(a.phases) {
				end = a.phases[j+1].start
			}
			if end <= 0 {
				end = p.start
			}
			fmt.Fprintf(w, "      %-13s %8.2fs → %8.2fs (%.3fs)\n", p.name, p.start, end, end-p.start)
		}
	}

	fmt.Fprintf(w, "placements: %d\n", len(placed))
	for _, d := range placed {
		writeDecision(w, d)
	}
	if len(rejected) > 0 {
		n := len(rejected)
		fmt.Fprintf(w, "rejections: considered in %d other rounds\n", n)
		if n > explainRejectionCap {
			rejected = rejected[:explainRejectionCap]
		}
		for _, d := range rejected {
			reason, detail := "", ""
			for _, cand := range d.Candidates {
				if cand.TaskID == taskID {
					reason, detail = cand.Rejection, cand.Detail
					break
				}
			}
			fmt.Fprintf(w, "  [%8.2fs] %s offered %s%s: %s", d.Time, d.Scheduler, d.Node, queueSuffix(d), reason)
			if detail != "" {
				fmt.Fprintf(w, " (%s)", detail)
			}
			fmt.Fprintln(w)
		}
		if n > explainRejectionCap {
			fmt.Fprintf(w, "  ... and %d more rounds\n", n-explainRejectionCap)
		}
	}
	return nil
}

func queueSuffix(d *Decision) string {
	if d.Queue == "" {
		return ""
	}
	return fmt.Sprintf(" [%s queue, cap %.2f util %.2f]", d.Queue, d.OfferCap, d.OfferUtil)
}

// writeDecision prints one full decision record.
func writeDecision(w io.Writer, d *Decision) {
	spec := ""
	if d.Speculative {
		spec = " (speculative copy)"
	}
	fmt.Fprintf(w, "  [%8.2fs] %s placed task %d on %s%s%s\n",
		d.Time, d.Scheduler, d.Winner, d.Node, queueSuffix(d), spec)
	fmt.Fprintf(w, "      winner: locality %s — heuristic: %s\n", d.WinnerLocality, d.Heuristic)
	if d.App != "" {
		fmt.Fprintf(w, "      app: %s (pool %q)\n", d.App, d.Pool)
	}
	for _, n := range d.Notes {
		fmt.Fprintf(w, "      note: %s\n", n)
	}
	if len(d.Candidates) > 1 {
		fmt.Fprintf(w, "      candidates considered: %d\n", len(d.Candidates))
	}
	for _, cand := range d.Candidates {
		if cand.TaskID == d.Winner && cand.Rejection == "" {
			continue
		}
		fmt.Fprintf(w, "        task %d [%s]: %s", cand.TaskID, cand.Locality, cand.Rejection)
		if cand.Detail != "" {
			fmt.Fprintf(w, " (%s)", cand.Detail)
		}
		fmt.Fprintln(w)
	}
}

// Decisions returns the committed decisions in commit order (tests).
func (c *Collector) Decisions() []*Decision {
	if c == nil {
		return nil
	}
	return c.decisions
}

// TracedTasks returns how many distinct tasks have attempt records.
func (c *Collector) TracedTasks() int {
	if c == nil {
		return 0
	}
	return len(c.attemptsByTask)
}
