package tracing

import "fmt"

// This file is the elastic-substrate track: spot-preemption lifecycle
// instants (notice → drain moves → kill) recorded by the driver, and
// instance-market events (acquisition, release, capacity denial) recorded
// by the tenant autoscaler. All methods are nil-receiver safe.

// elasticInstant files one point event under the "elastic" category,
// optionally scoped to an application and pinned to a node's track.
func (c *Collector) elasticInstant(name, app, node string, args map[string]interface{}) {
	if c == nil {
		return
	}
	if args == nil {
		args = map[string]interface{}{}
	}
	if app != "" {
		args["app"] = app
	}
	c.instants = append(c.instants, instant{
		seq: c.nextSeq(), time: c.now(),
		name: name, cat: "elastic", node: node,
		args: args,
	})
}

// PreemptNotice records the driver hearing a spot-reclamation warning for
// a node (the grace window opens and the drain begins).
func (c *Collector) PreemptNotice(app, node string, grace float64) {
	c.elasticInstant(fmt.Sprintf("preempt notice %s", node), app, node,
		map[string]interface{}{"grace": grace})
}

// DrainMoved records one shuffle block re-replicated off a doomed node
// during its grace window.
func (c *Collector) DrainMoved(app, node, dest string, stage, index int, bytes int64) {
	c.elasticInstant(fmt.Sprintf("drain %s→%s", node, dest), app, node,
		map[string]interface{}{"stage": stage, "index": index, "bytes": bytes, "dest": dest})
}

// PreemptKill records the reclaimed instance dying: resolution is
// "drained" (nothing of value lost) or "killed" (attempts or outputs went
// down with it).
func (c *Collector) PreemptKill(app, node, resolution string, attempts int) {
	c.elasticInstant(fmt.Sprintf("preempt kill %s (%s)", node, resolution), app, node,
		map[string]interface{}{"resolution": resolution, "attempts_killed": attempts})
}

// InstanceAcquired records the autoscaler taking an instance from the
// market (billing is "on-demand" or "spot").
func (c *Collector) InstanceAcquired(node, billing string, price float64) {
	c.elasticInstant(fmt.Sprintf("acquire %s (%s)", node, billing), "", node,
		map[string]interface{}{"billing": billing, "price_per_hour": price})
}

// InstanceReleased records the autoscaler returning an instance (idle
// scale-down or preemption), with the hold's accrued cost.
func (c *Collector) InstanceReleased(node, reason string, heldFor, cost float64) {
	c.elasticInstant(fmt.Sprintf("release %s", node), "", node,
		map[string]interface{}{"reason": reason, "held_for": heldFor, "cost": cost})
}

// InstanceDenied records a pilot-job acquisition attempt finding no
// capacity, and the deterministic backoff before the retry.
func (c *Collector) InstanceDenied(wanted, attempt int, retryIn float64) {
	c.elasticInstant("acquire denied", "", "",
		map[string]interface{}{"wanted": wanted, "attempt": attempt, "retry_in": retryIn})
}
