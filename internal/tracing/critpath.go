package tracing

import (
	"fmt"
	"io"

	"rupam/internal/metrics"
	"rupam/internal/task"
)

// Critical-path analysis over a finished application. The dependency model
// mirrors the driver exactly: a task becomes ready when every task of its
// stage's parent stages has a successful attempt (stages submit only then),
// and jobs are a barrier — job j+1's stages submit only after job j's final
// stage completes. Within those rules each task contributes a
// "wait" edge (ready → launch: queueing plus scheduler placement) and a
// "run" edge (launch → end of its successful attempt). Because launches are
// gated on exactly these dependencies, ready-time + wait + run reproduces
// the attempt's actual end time, so the longest chain telescopes: its
// length is precisely last-end − first-launch and the per-category
// breakdown sums to it.

// PathSegment is one task's contribution to the critical path.
type PathSegment struct {
	TaskID  int
	StageID int
	JobID   int
	Node    string

	Wait    float64 // ready → launch (queueing + placement)
	Run     float64 // launch → successful end
	Seconds float64 // Wait + Run

	// Slack is how much the app's longest path shrinks if this segment
	// were free (both edges zero) — the paper's "what bounded the
	// makespan" question, per edge.
	Slack float64
}

// CategoryOrder fixes the print and test order of breakdown categories.
var CategoryOrder = []string{"sched", "shuffle-disk", "shuffle-net", "gc", "compute"}

// CriticalPath is the analyzer's result.
type CriticalPath struct {
	Makespan   float64 // last successful end − first launch
	Length     float64 // longest dependency chain (== Makespan by construction)
	Categories map[string]float64
	Segments   []PathSegment // in execution order, source → sink
}

// TaskIDs returns the path's task IDs in execution order.
func (cp *CriticalPath) TaskIDs() []int {
	ids := make([]int, len(cp.Segments))
	for i, s := range cp.Segments {
		ids[i] = s.TaskID
	}
	return ids
}

// node is the per-task DP state.
type cpNode struct {
	t       *task.Task
	jobID   int
	parents []*task.Task // tasks of the stage's parent stages
	launch  float64
	end     float64
}

// Analyze walks a finished application's dependencies and returns the
// longest path. Every task must have a successful attempt; aborted or
// still-running applications are rejected.
func Analyze(app *task.Application) (*CriticalPath, error) {
	if app == nil || len(app.Jobs) == 0 {
		return nil, fmt.Errorf("critpath: empty application")
	}

	nodes := make(map[int]*cpNode)
	var order []*cpNode // definition order: parents of a stage precede it
	jobBarrier := make([]float64, len(app.Jobs)+1)
	appStart := -1.0

	for ji, j := range app.Jobs {
		for _, st := range j.Stages {
			var parents []*task.Task
			for _, p := range st.Parent {
				parents = append(parents, p.Tasks...)
			}
			for _, t := range st.Tasks {
				m := t.SuccessMetrics()
				if m == nil {
					return nil, fmt.Errorf("critpath: %s has no successful attempt (application did not finish)", t)
				}
				n := &cpNode{t: t, jobID: j.ID, parents: parents, launch: m.Launch, end: m.End}
				nodes[t.ID] = n
				order = append(order, n)
				if appStart < 0 || m.Launch < appStart {
					appStart = m.Launch
				}
				if m.End > jobBarrier[ji+1] {
					jobBarrier[ji+1] = m.End
				}
			}
		}
	}
	jobBarrier[0] = appStart
	jobIdx := make(map[int]int, len(app.Jobs))
	for i, j := range app.Jobs {
		jobIdx[j.ID] = i
	}

	// Sink: latest successful end, ties to the lowest task ID.
	var sink *cpNode
	for _, n := range order {
		if sink == nil || n.end > sink.end || (n.end == sink.end && n.t.ID < sink.t.ID) {
			sink = n
		}
	}

	// Walk back from the sink choosing, at each step, the dependency that
	// actually bounded readiness: the latest-ending parent task, or the
	// previous job's barrier / app start when the stage had no parents (or
	// all parents ended before the barrier).
	var chain []*cpNode
	for n := sink; n != nil; {
		chain = append(chain, n)
		ready := jobBarrier[jobIdx[n.jobID]]
		var pred *cpNode
		for _, p := range n.parents {
			pn := nodes[p.ID]
			if pn.end > ready || (pred != nil && pn.end == ready && pn.t.ID < pred.t.ID) {
				ready = pn.end
				pred = pn
			}
		}
		if pred == nil && jobIdx[n.jobID] > 0 {
			// The barrier bound us: continue through the previous job's
			// latest-ending task.
			barrier := jobBarrier[jobIdx[n.jobID]]
			for _, c := range order {
				if jobIdx[c.jobID] == jobIdx[n.jobID]-1 && c.end == barrier {
					if pred == nil || c.t.ID < pred.t.ID {
						pred = c
					}
				}
			}
		}
		n = pred
	}
	// Reverse into execution order.
	for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
		chain[i], chain[j] = chain[j], chain[i]
	}

	cp := &CriticalPath{
		Makespan:   sink.end - appStart,
		Categories: make(map[string]float64, len(CategoryOrder)),
	}
	prevEnd := appStart
	for _, n := range chain {
		m := n.t.SuccessMetrics()
		seg := PathSegment{
			TaskID:  n.t.ID,
			StageID: n.t.StageID,
			JobID:   n.jobID,
			Node:    m.Executor,
			Wait:    n.launch - prevEnd,
			Run:     n.end - n.launch,
		}
		seg.Seconds = seg.Wait + seg.Run
		var b metrics.Breakdown
		b.Add(m)
		cp.Categories["sched"] += seg.Wait + b.Scheduler
		cp.Categories["shuffle-disk"] += b.ShuffleDisk
		cp.Categories["shuffle-net"] += b.ShuffleNet
		cp.Categories["gc"] += b.GC
		// Residual (dispatch latency, admission stalls — run time the
		// metrics don't itemize) lands in compute so categories sum
		// exactly to the path length.
		cp.Categories["compute"] += b.Compute + (seg.Run - b.Total())
		cp.Segments = append(cp.Segments, seg)
		cp.Length += seg.Seconds
		prevEnd = n.end
	}

	// What-if slack per segment: re-run the longest-path DP with that
	// task's wait and run zeroed.
	for i := range cp.Segments {
		cp.Segments[i].Slack = cp.Length - longestWithout(order, nodes, jobBarrier, jobIdx, appStart, cp.Segments[i].TaskID)
	}
	return cp, nil
}

// longestWithout computes the app's longest dependency chain with the
// given task's wait and run edges zeroed, relative to appStart.
func longestWithout(order []*cpNode, nodes map[int]*cpNode, jobBarrier []float64, jobIdx map[int]int, appStart float64, freeTask int) float64 {
	// eft[id] = earliest finish in the what-if schedule. Tasks are visited
	// in definition order (parents first, jobs in sequence), so a single
	// pass suffices; job barriers are recomputed as the pass crosses jobs.
	eft := make(map[int]float64, len(order))
	barrier := make([]float64, len(jobBarrier))
	barrier[0] = appStart
	longest := 0.0
	for _, n := range order {
		ji := jobIdx[n.jobID]
		ready := barrier[ji]
		for _, p := range n.parents {
			if f := eft[p.ID]; f > ready {
				ready = f
			}
		}
		f := ready
		if n.t.ID != freeTask {
			orig := jobBarrier[jobIdx[n.jobID]]
			origReady := orig
			for _, p := range n.parents {
				if e := nodes[p.ID].end; e > origReady {
					origReady = e
				}
			}
			f = ready + (n.launch - origReady) + (n.end - n.launch)
		}
		eft[n.t.ID] = f
		if f > barrier[ji+1] {
			barrier[ji+1] = f
		}
		if f-appStart > longest {
			longest = f - appStart
		}
	}
	return longest
}

// Print writes a human-readable report.
func (cp *CriticalPath) Print(w io.Writer) {
	fmt.Fprintf(w, "critical path: %.2fs over %d tasks (makespan %.2fs)\n", cp.Length, len(cp.Segments), cp.Makespan)
	fmt.Fprintf(w, "  breakdown:")
	for _, cat := range CategoryOrder {
		fmt.Fprintf(w, "  %s %.2fs", cat, cp.Categories[cat])
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "  %-8s %-6s %-4s %-10s %10s %10s %10s %10s\n",
		"task", "stage", "job", "node", "wait(s)", "run(s)", "total(s)", "slack(s)")
	for _, s := range cp.Segments {
		fmt.Fprintf(w, "  %-8d %-6d %-4d %-10s %10.2f %10.2f %10.2f %10.2f\n",
			s.TaskID, s.StageID, s.JobID, s.Node, s.Wait, s.Run, s.Seconds, s.Slack)
	}
}
