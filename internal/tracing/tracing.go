// Package tracing is the structured event layer over the simulation: a
// collector on the virtual clock records typed spans and instants — task
// attempt lifecycle (queued → launched → per-phase execution →
// finished/killed), stage and job boundaries, speculation markers,
// fault-injection windows, executor loss/rejoin — plus a
// scheduler-decision audit record for every placement (the candidate set
// considered, per-candidate scores, the winning heuristic, and the
// rejection reason for each loser).
//
// The collector is zero-overhead when disabled: every method is safe on a
// nil receiver and returns immediately, so instrumented code paths carry a
// nil-check's cost and nothing else. Enabled, it allocates only appends on
// already-taken code paths — it schedules no events, consults no RNG, and
// iterates no maps while recording, so a traced run is behaviorally
// bit-identical to an untraced one.
//
// Determinism rules: every record carries (virtual time, sequence number)
// where the sequence is a collector-local counter incremented in emit
// order; exports sort by that key and serialize via encoding/json (which
// orders object keys), so two runs of the same seed produce byte-identical
// trace files.
package tracing

import (
	"fmt"

	"rupam/internal/simx"
	"rupam/internal/task"
)

// Collector accumulates trace records for one application run. The zero
// source of one is NewCollector; a nil *Collector is the disabled state.
type Collector struct {
	eng *simx.Engine
	seq uint64

	nodes   []nodeInfo
	nodeIdx map[string]int

	attempts       []*AttemptTrace
	attemptsByTask map[int][]*AttemptTrace
	decisions      []*Decision
	instants       []instant
	spans          []span

	queuedAt   map[int]float64 // last time each task entered a pending queue
	specMarked map[int]bool    // tasks already marked speculatable (dedup)

	openJobs   map[int]int // job ID → index into spans
	openStages map[int]int // stage ID → index into spans

	slots    map[string][]bool // per-node core-slot occupancy
	maxSlots map[string]int    // high-water slot count per node (thread metadata)

	maxTime float64
}

type nodeInfo struct {
	name  string
	cores int
}

// instant is a point event.
type instant struct {
	seq  uint64
	time float64
	name string
	cat  string
	node string // "" = driver
	args map[string]interface{}
}

// span is an interval event on the driver track (jobs, stages) or a node's
// fault track. Attempt spans are kept separately as AttemptTraces.
type span struct {
	seq        uint64
	start, end float64 // end < 0 while still open
	name       string
	cat        string
	node       string // "" = driver
	args       map[string]interface{}
}

// NewCollector returns an enabled, empty collector. It becomes useful once
// Bind attaches the virtual clock (the spark runtime does this on Run).
func NewCollector() *Collector {
	return &Collector{
		nodeIdx:        make(map[string]int),
		attemptsByTask: make(map[int][]*AttemptTrace),
		queuedAt:       make(map[int]float64),
		specMarked:     make(map[int]bool),
		openJobs:       make(map[int]int),
		openStages:     make(map[int]int),
		slots:          make(map[string][]bool),
		maxSlots:       make(map[string]int),
	}
}

// Enabled reports whether the collector is recording.
func (c *Collector) Enabled() bool { return c != nil }

// Bind attaches the virtual clock. Records emitted before binding are
// stamped at t=0.
func (c *Collector) Bind(eng *simx.Engine) {
	if c == nil {
		return
	}
	c.eng = eng
}

// RegisterNode declares a cluster node (in deterministic cluster order);
// the Chrome exporter assigns one pid per registered node.
func (c *Collector) RegisterNode(name string, cores int) {
	if c == nil {
		return
	}
	if _, ok := c.nodeIdx[name]; ok {
		return
	}
	c.nodeIdx[name] = len(c.nodes)
	c.nodes = append(c.nodes, nodeInfo{name: name, cores: cores})
}

func (c *Collector) now() float64 {
	if c.eng == nil {
		return 0
	}
	t := c.eng.Now()
	if t > c.maxTime {
		c.maxTime = t
	}
	return t
}

func (c *Collector) nextSeq() uint64 {
	c.seq++
	return c.seq
}

// EventCount returns the number of records collected so far (attempts,
// decisions, instants and spans).
func (c *Collector) EventCount() int {
	if c == nil {
		return 0
	}
	return len(c.attempts) + len(c.decisions) + len(c.instants) + len(c.spans)
}

// DecisionCount returns the number of committed placement decisions.
func (c *Collector) DecisionCount() int {
	if c == nil {
		return 0
	}
	return len(c.decisions)
}

// ---- driver lifecycle ------------------------------------------------------

// JobBegin opens a job span.
func (c *Collector) JobBegin(id int, name string) {
	if c == nil {
		return
	}
	c.openJobs[id] = len(c.spans)
	c.spans = append(c.spans, span{
		seq: c.nextSeq(), start: c.now(), end: -1,
		name: fmt.Sprintf("job %d (%s)", id, name), cat: "job",
	})
}

// JobEnd closes the job's span.
func (c *Collector) JobEnd(id int) {
	if c == nil {
		return
	}
	if i, ok := c.openJobs[id]; ok {
		c.spans[i].end = c.now()
		delete(c.openJobs, id)
	}
}

// StageBegin opens a stage span when the driver submits it.
func (c *Collector) StageBegin(st *task.Stage) {
	if c == nil {
		return
	}
	c.openStages[st.ID] = len(c.spans)
	c.spans = append(c.spans, span{
		seq: c.nextSeq(), start: c.now(), end: -1,
		name: fmt.Sprintf("stage %d (%s)", st.ID, st.Name), cat: "stage",
		args: map[string]interface{}{
			"job":   st.JobID,
			"tasks": len(st.Tasks),
			"kind":  st.Kind.String(),
		},
	})
}

// StageEnd closes the stage's span.
func (c *Collector) StageEnd(id int) {
	if c == nil {
		return
	}
	if i, ok := c.openStages[id]; ok {
		c.spans[i].end = c.now()
		delete(c.openStages, id)
	}
}

// TaskQueued records that a task entered a pending queue (stage submission
// or resubmission after a failure/rollback); the attempt trace reports the
// queued→launch wait from it.
func (c *Collector) TaskQueued(id int) {
	if c == nil {
		return
	}
	c.queuedAt[id] = c.now()
}

// SpeculatableMarked records the first time a task is marked a straggler.
// Subsequent marks of the same task are dropped — the straggler scan
// re-marks every interval.
func (c *Collector) SpeculatableMarked(id int) {
	if c == nil || c.specMarked[id] {
		return
	}
	c.specMarked[id] = true
	c.instants = append(c.instants, instant{
		seq: c.nextSeq(), time: c.now(),
		name: fmt.Sprintf("speculatable task %d", id), cat: "speculation",
	})
}

// ExecutorLost records the driver declaring a node's executor dead.
func (c *Collector) ExecutorLost(node, reason string) {
	if c == nil {
		return
	}
	c.instants = append(c.instants, instant{
		seq: c.nextSeq(), time: c.now(),
		name: "executor lost", cat: "driver", node: node,
		args: map[string]interface{}{"reason": reason},
	})
}

// ExecutorRejoined records a lost executor heartbeating again.
func (c *Collector) ExecutorRejoined(node string) {
	if c == nil {
		return
	}
	c.instants = append(c.instants, instant{
		seq: c.nextSeq(), time: c.now(),
		name: "executor rejoined", cat: "driver", node: node,
	})
}

// DriverCrashed records the driver process dying; restartAfter is the
// scheduled downtime before recovery begins.
func (c *Collector) DriverCrashed(restartAfter float64) {
	if c == nil {
		return
	}
	c.instants = append(c.instants, instant{
		seq: c.nextSeq(), time: c.now(),
		name: "driver crashed", cat: "driver",
		args: map[string]interface{}{"restart_after": restartAfter},
	})
}

// DriverRecovered records the end of a crash-recovery replay: how many
// in-flight attempts were re-adopted from surviving executors, how many
// buffered executor results were delivered, and how many WAL records the
// rebuild folded.
func (c *Collector) DriverRecovered(adopted, delivered, walRecords int) {
	if c == nil {
		return
	}
	c.instants = append(c.instants, instant{
		seq: c.nextSeq(), time: c.now(),
		name: "driver recovered", cat: "driver",
		args: map[string]interface{}{
			"adopted":     adopted,
			"delivered":   delivered,
			"wal_records": walRecords,
		},
	})
}

// RecoverySpan records the driver's downtime window [crashAt, recoveredAt]
// on the driver track.
func (c *Collector) RecoverySpan(crashAt, recoveredAt float64) {
	if c == nil {
		return
	}
	if recoveredAt > c.maxTime {
		c.maxTime = recoveredAt
	}
	c.spans = append(c.spans, span{
		seq: c.nextSeq(), start: crashAt, end: recoveredAt,
		name: "driver recovery", cat: "recovery",
	})
}

// JobAborted records a structured job abort.
func (c *Collector) JobAborted(reason string) {
	if c == nil {
		return
	}
	c.instants = append(c.instants, instant{
		seq: c.nextSeq(), time: c.now(),
		name: "job aborted", cat: "driver",
		args: map[string]interface{}{"reason": reason},
	})
}

// FaultSpan records an injected fault window [now, now+duration] on a
// node's fault track. duration <= 0 means open-ended (a permanent crash);
// the exporter closes it at the trace's end.
func (c *Collector) FaultSpan(node, kind, detail string, duration float64) {
	if c == nil {
		return
	}
	start := c.now()
	end := -1.0
	if duration > 0 {
		end = start + duration
		if end > c.maxTime {
			c.maxTime = end
		}
	}
	args := map[string]interface{}{}
	if detail != "" {
		args["detail"] = detail
	}
	c.spans = append(c.spans, span{
		seq: c.nextSeq(), start: start, end: end,
		name: kind, cat: "fault", node: node, args: args,
	})
}

// ---- task attempts ---------------------------------------------------------

// AttemptTrace follows one task attempt from launch to its terminal state,
// recording phase boundaries as the executor reaches them. A nil
// *AttemptTrace (tracing disabled) ignores all calls.
type AttemptTrace struct {
	c *Collector

	seq         uint64
	TaskID      int
	StageID     int
	JobID       int
	Index       int
	Node        string
	Locality    string
	Speculative bool
	QueuedAt    float64 // -1 when the queue time was not observed
	Launch      float64
	End         float64 // 0 while running
	Outcome     string
	slot        int
	phases      []phaseRec
}

type phaseRec struct {
	name  string
	start float64
}

// AttemptStarted opens an attempt trace; the executor calls it from Launch.
func (c *Collector) AttemptStarted(t *task.Task, st *task.Stage, node string, locality string, speculative bool) *AttemptTrace {
	if c == nil {
		return nil
	}
	a := &AttemptTrace{
		c:           c,
		seq:         c.nextSeq(),
		TaskID:      t.ID,
		StageID:     st.ID,
		JobID:       st.JobID,
		Index:       t.Index,
		Node:        node,
		Locality:    locality,
		Speculative: speculative,
		QueuedAt:    -1,
		Launch:      c.now(),
		slot:        c.takeSlot(node),
	}
	if q, ok := c.queuedAt[t.ID]; ok {
		a.QueuedAt = q
	}
	a.phases = append(a.phases, phaseRec{name: "dispatch", start: a.Launch})
	c.attempts = append(c.attempts, a)
	c.attemptsByTask[t.ID] = append(c.attemptsByTask[t.ID], a)
	return a
}

// takeSlot assigns the lowest free core-slot index on node (slots beyond
// the core count appear under over-commit and are released on End).
func (c *Collector) takeSlot(node string) int {
	slots := c.slots[node]
	for i, used := range slots {
		if !used {
			slots[i] = true
			return i
		}
	}
	c.slots[node] = append(slots, true)
	if len(c.slots[node]) > c.maxSlots[node] {
		c.maxSlots[node] = len(c.slots[node])
	}
	return len(c.slots[node]) - 1
}

// Phase marks the attempt entering a named execution phase; the previous
// phase ends here.
func (a *AttemptTrace) Phase(name string) {
	if a == nil || a.End != 0 {
		return
	}
	a.phases = append(a.phases, phaseRec{name: name, start: a.c.now()})
}

// Finish closes the attempt with its terminal outcome and releases the
// node's display slot.
func (a *AttemptTrace) Finish(outcome string) {
	if a == nil || a.End != 0 {
		return
	}
	a.End = a.c.now()
	a.Outcome = outcome
	if slots := a.c.slots[a.Node]; a.slot < len(slots) {
		slots[a.slot] = false
	}
}
