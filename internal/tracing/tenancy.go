package tracing

import "fmt"

// This file is the multi-tenant track: application lifecycle instants
// (arrival → admission/rejection → start → finish) and pool-scoped spans,
// recorded by the tenant manager so a trace of a tenancy run shows which
// pool owned each application and how long it queued. Like every other
// collector method these are nil-receiver safe and allocation-only.

// appInstant files one application lifecycle point event on the driver
// track under the "tenant" category.
func (c *Collector) appInstant(name, app, pool string, args map[string]interface{}) {
	if c == nil {
		return
	}
	if args == nil {
		args = map[string]interface{}{}
	}
	args["app"] = app
	if pool != "" {
		args["pool"] = pool
	}
	c.instants = append(c.instants, instant{
		seq: c.nextSeq(), time: c.now(),
		name: fmt.Sprintf("%s %s", name, app), cat: "tenant",
		args: args,
	})
}

// AppArrived records an application entering the system (open-loop
// arrival generator submission).
func (c *Collector) AppArrived(app, pool, workload string) {
	c.appInstant("app arrived", app, pool, map[string]interface{}{"workload": workload})
}

// AppAdmitted records admission control accepting an application into the
// pending queue.
func (c *Collector) AppAdmitted(app, pool string, queueDepth int) {
	c.appInstant("app admitted", app, pool, map[string]interface{}{"queue_depth": queueDepth})
}

// AppRejected records admission control turning an application away
// (pending queue full).
func (c *Collector) AppRejected(app, pool, reason string) {
	c.appInstant("app rejected", app, pool, map[string]interface{}{"reason": reason})
}

// AppStarted records an application's driver booting (a concurrency slot
// freed up and the app left the pending queue).
func (c *Collector) AppStarted(app, pool string, waited float64) {
	c.appInstant("app started", app, pool, map[string]interface{}{"queued_for": waited})
}

// AppFinished records an application completing (or aborting) and frees
// its span on the tenant track.
func (c *Collector) AppFinished(app, pool string, duration float64, aborted bool) {
	c.appInstant("app finished", app, pool, map[string]interface{}{
		"duration": duration,
		"aborted":  aborted,
	})
}

// LeaseChanged records a dynamic-allocation lease transition for an
// application on a node: positive cores for a grant, zero for a release.
func (c *Collector) LeaseChanged(app, node string, cores int, reason string) {
	if c == nil {
		return
	}
	c.instants = append(c.instants, instant{
		seq: c.nextSeq(), time: c.now(),
		name: fmt.Sprintf("lease %s/%s=%d", app, node, cores), cat: "tenant", node: node,
		args: map[string]interface{}{"app": app, "cores": cores, "reason": reason},
	})
}
