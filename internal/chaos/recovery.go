package chaos

// This file is the driver-crash recovery harness: for each seed it draws a
// fault plan that includes a driver crash, runs it against a reference run
// of the same plan with the crash stripped out, and checks the recovery
// battery — the crashed run completes whenever the reference does, no
// completion is lost or double-counted across the crash, the final
// succeeded-task set and per-stage shuffle outputs match the reference,
// and replaying the run's write-ahead log twice folds to byte-identical
// state.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"rupam/internal/cluster"
	"rupam/internal/core"
	"rupam/internal/executor"
	"rupam/internal/faults"
	"rupam/internal/hdfs"
	"rupam/internal/simx"
	"rupam/internal/spark"
	"rupam/internal/task"
	"rupam/internal/wal"
	"rupam/internal/workloads"
)

// RecoveryRecord is one (scheduler, seed) crash-recovery trial.
type RecoveryRecord struct {
	Scheduler string `json:"scheduler"`
	Seed      uint64 `json:"seed"`

	// CrashFired reports whether the scheduled driver crash actually
	// landed before the application finished (a crash drawn past the app's
	// end never fires; the trial still checks the non-crash invariants).
	CrashFired bool `json:"crash_fired"`
	Recoveries int  `json:"recoveries"`
	WALRecords int  `json:"wal_records"`

	Duration    float64 `json:"duration_s"`
	RefDuration float64 `json:"ref_duration_s"`
	Completed   bool    `json:"completed"`
	Aborted     string  `json:"aborted,omitempty"`

	Fingerprint string `json:"fingerprint"`

	Violations []string `json:"violations,omitempty"`
}

// RecoveryReport is a full recovery sweep's outcome.
type RecoveryReport struct {
	Workload   string           `json:"workload"`
	Seeds      []uint64         `json:"seeds"`
	Runs       []RecoveryRecord `json:"runs"`
	CrashesHit int              `json:"crashes_hit"`
	Violations int              `json:"violations"`
}

// recoveryGen derives the sweep's fault mix: the configured mix plus at
// least one driver crash.
func recoveryGen(cfg Config) faults.GenConfig {
	gen := cfg.Gen
	if gen.DriverCrashes == 0 {
		gen.DriverCrashes = 1
	}
	return gen
}

// RecoveryRun executes one seed's plan under one scheduler, with the
// driver crash included (crash=true) or stripped out for the unfailed
// reference (crash=false). Everything else — cluster, data placement,
// workload, worker faults — is identical between the two, so their final
// task outcomes are directly comparable.
func RecoveryRun(cfg Config, scheduler string, seed uint64, crash bool) (*spark.Result, *spark.Runtime) {
	cfg = cfg.withDefaults()
	executor.ResetRunSeq()
	eng := simx.NewEngine()
	clu := cluster.New(eng)
	cluster.NewHydra(clu)
	store := hdfs.NewStore(clu.NodeNames(), 2, seed*2654435761+1)
	p := cfg.Params
	if p.Seed == 0 {
		p.Seed = seed*7 + 42
	}
	app := workloads.Build(cfg.Workload, store, p)

	plan := faults.RandomSchedule(seed, clu.NodeNames(), recoveryGen(cfg))
	if !crash {
		plan = plan.WithoutKind(faults.DriverCrash)
	}

	var sched spark.Scheduler
	switch scheduler {
	case "rupam":
		sched = core.New(core.Config{})
	case "spark":
		sched = spark.NewDefaultScheduler()
	default:
		panic(fmt.Sprintf("chaos: unknown scheduler %q", scheduler))
	}

	scfg := HardenedConfig(seed)
	scfg.Faults = plan
	rt := spark.NewRuntime(eng, clu, sched, scfg)
	return rt.Run(app), rt
}

// RecoverySoak sweeps every (scheduler, seed) pair through the crashed
// run + reference run battery and returns the report. As with Soak, a
// panicking run is recorded as a violation, never propagated.
func RecoverySoak(cfg Config) *RecoveryReport {
	cfg = cfg.withDefaults()
	rep := &RecoveryReport{Workload: cfg.Workload, Seeds: cfg.Seeds}
	for _, seed := range cfg.Seeds {
		for _, sched := range cfg.Schedulers {
			rec := recoverySeed(cfg, sched, seed)
			if !cfg.SkipVerify && rec.Aborted != "panic" {
				again := recoverySeed(cfg, sched, seed)
				if again.Fingerprint != rec.Fingerprint {
					rec.Violations = append(rec.Violations, fmt.Sprintf(
						"non-deterministic: fingerprint %s on re-run, %s first",
						again.Fingerprint, rec.Fingerprint))
				}
			}
			if rec.CrashFired {
				rep.CrashesHit++
			}
			rep.Violations += len(rec.Violations)
			rep.Runs = append(rep.Runs, rec)
		}
	}
	return rep
}

// recoverySeed runs one crashed trial against its reference and checks the
// recovery battery.
func recoverySeed(cfg Config, scheduler string, seed uint64) (rec RecoveryRecord) {
	rec = RecoveryRecord{Scheduler: scheduler, Seed: seed}
	defer func() {
		if r := recover(); r != nil {
			rec.Aborted = "panic"
			rec.Violations = append(rec.Violations, fmt.Sprintf("run panicked: %v", r))
		}
	}()

	res, rt := RecoveryRun(cfg, scheduler, seed, true)
	refRes, _ := RecoveryRun(cfg, scheduler, seed, false)

	rec.CrashFired = res.DriverCrashes > 0
	rec.Recoveries = res.DriverRecoveries
	rec.Duration = res.Duration
	rec.RefDuration = refRes.Duration
	rec.Completed = res.Aborted == nil
	if res.Aborted != nil {
		rec.Aborted = res.Aborted.Error()
	}
	rec.Fingerprint = Fingerprint(res)

	rec.Violations = append(rec.Violations, CheckInvariants(res, rt)...)
	rec.Violations = append(rec.Violations, CheckRecoveryEquivalence(res, refRes)...)
	if res.DriverCrashes != res.DriverRecoveries {
		rec.Violations = append(rec.Violations, fmt.Sprintf(
			"%d driver crashes but %d recoveries", res.DriverCrashes, res.DriverRecoveries))
	}

	if w := rt.WAL(); w != nil {
		n, vs := CheckWALReplayIdentity(w.Bytes())
		rec.WALRecords = n
		rec.Violations = append(rec.Violations, vs...)
	} else if rec.CrashFired {
		rec.Violations = append(rec.Violations, "driver crashed with no write-ahead log")
	}
	return rec
}

// CheckRecoveryEquivalence compares a crashed-and-recovered run's final
// outcome against the unfailed reference run of the same plan: completion
// status, the set of task IDs with a successful attempt, and each stage's
// registered shuffle outputs (partition index → bytes; placement is
// allowed to differ, the data is not).
func CheckRecoveryEquivalence(res, ref *spark.Result) []string {
	var v []string
	if ref.Aborted == nil && res.Aborted != nil {
		v = append(v, fmt.Sprintf(
			"reference run completed but crashed run aborted: %v", res.Aborted))
	}
	if ref.Aborted != nil {
		// A plan whose worker faults alone doom the job gives the recovered
		// run nothing to be equivalent to.
		return v
	}

	got, want := succeededTaskIDs(res), succeededTaskIDs(ref)
	if !equalInts(got, want) {
		v = append(v, fmt.Sprintf(
			"succeeded-task sets differ: crashed run %d tasks, reference %d", len(got), len(want)))
	}

	gotOut, wantOut := stageOutputs(res), stageOutputs(ref)
	for _, stID := range sortedStageIDs(wantOut) {
		w := wantOut[stID]
		g := gotOut[stID]
		if len(g) != len(w) {
			v = append(v, fmt.Sprintf(
				"stage %d: crashed run registered %d shuffle outputs, reference %d",
				stID, len(g), len(w)))
			continue
		}
		for idx, b := range w {
			if g[idx] != b {
				v = append(v, fmt.Sprintf(
					"stage %d partition %d: crashed run output %d bytes, reference %d",
					stID, idx, g[idx], b))
			}
		}
	}
	return v
}

// CheckWALReplayIdentity replays the log twice and requires both folds to
// encode byte-identically; it returns the replayed record count and any
// violations.
func CheckWALReplayIdentity(walBytes []byte) (int, []string) {
	s1, n1, err1 := wal.Replay(bytes.NewReader(walBytes))
	if err1 != nil {
		return n1, []string{fmt.Sprintf("wal replay failed: %v", err1)}
	}
	s2, n2, err2 := wal.Replay(bytes.NewReader(walBytes))
	if err2 != nil {
		return n1, []string{fmt.Sprintf("wal re-replay failed: %v", err2)}
	}
	var v []string
	if n1 != n2 {
		v = append(v, fmt.Sprintf("wal replay record counts differ: %d vs %d", n1, n2))
	}
	if !bytes.Equal(s1.Encode(), s2.Encode()) {
		v = append(v, "wal replay is not byte-identical across two folds")
	}
	return n1, v
}

// succeededTaskIDs returns the sorted IDs of tasks with at least one
// successful attempt.
func succeededTaskIDs(res *spark.Result) []int {
	var ids []int
	for _, tk := range res.App.AllTasks() {
		for _, a := range tk.Attempts {
			if a.Succeeded() {
				ids = append(ids, tk.ID)
				break
			}
		}
	}
	sort.Ints(ids)
	return ids
}

// stageOutputs collects each shuffle-map stage's registered outputs as
// partition index → bytes.
func stageOutputs(res *spark.Result) map[int]map[int]int64 {
	out := make(map[int]map[int]int64)
	for _, j := range res.App.Jobs {
		for _, st := range j.Stages {
			if st.Kind != task.ShuffleMap {
				continue
			}
			m := make(map[int]int64)
			for _, t := range st.Tasks {
				if node, b := st.OutputOf(t.Index); node != "" {
					m[t.Index] = b
				}
			}
			out[st.ID] = m
		}
	}
	return out
}

func sortedStageIDs(m map[int]map[int]int64) []int {
	ids := make([]int, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// WriteJSON writes the report as a deterministic, indented JSON artifact.
func (r *RecoveryReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Print summarizes the sweep, one line per trial plus a verdict.
func (r *RecoveryReport) Print(w io.Writer) {
	fmt.Fprintf(w, "recovery soak: %s, %d seeds, %d/%d trials hit the driver crash\n",
		r.Workload, len(r.Seeds), r.CrashesHit, len(r.Runs))
	fmt.Fprintf(w, "%-6s %6s %6s %9s %9s %5s %8s %s\n",
		"sched", "seed", "crash", "dur(s)", "ref(s)", "recov", "walrecs", "fingerprint")
	for _, rec := range r.Runs {
		crash := "-"
		if rec.CrashFired {
			crash = "yes"
		}
		fmt.Fprintf(w, "%-6s %6d %6s %9.1f %9.1f %5d %8d %s\n",
			rec.Scheduler, rec.Seed, crash, rec.Duration, rec.RefDuration,
			rec.Recoveries, rec.WALRecords, rec.Fingerprint)
		for _, v := range rec.Violations {
			fmt.Fprintf(w, "    VIOLATION: %s\n", v)
		}
	}
	if r.Violations == 0 {
		fmt.Fprintf(w, "0 recovery violations across %d trials\n", len(r.Runs))
	} else {
		fmt.Fprintf(w, "%d RECOVERY VIOLATIONS across %d trials\n", r.Violations, len(r.Runs))
	}
}
