package chaos

import (
	"encoding/json"
	"fmt"
	"io"

	"rupam/internal/cluster"
	"rupam/internal/faults"
	"rupam/internal/simx"
	"rupam/internal/spark"
	"rupam/internal/tenant"
)

// Tenancy soak: the multi-application counterpart of Soak. Each seed runs
// a whole open-loop arrival stream on one shared cluster under a random
// fault plan (including a driver crash routed to a running application),
// then asserts the tenant manager's own battery (admission accounting,
// lease drain, substrate conservation, cache isolation) plus the
// application-scoped chaos invariants on every application that ran —
// faults against one tenant must never corrupt a sibling's accounting.

// TenancyConfig parameterizes a tenancy soak sweep. The zero value (plus
// Seeds) is usable: five arrivals of the default mix, both schedulers,
// TenancyGen faults, every seed run twice for the bit-identity check.
type TenancyConfig struct {
	// Schedulers to drive; default both ("spark", "rupam").
	Schedulers []string
	// Seeds are the sweep's plan seeds.
	Seeds []uint64
	// Apps is the arrival count per run (default 5).
	Apps int
	// MeanGap is the mean inter-arrival gap in seconds (default 25).
	MeanGap float64
	// Gen parameterizes faults.RandomSchedule; zero value takes
	// TenancyGen.
	Gen faults.GenConfig
	// SkipVerify disables the second (bit-identity) run per seed.
	SkipVerify bool
}

func (c TenancyConfig) withDefaults() TenancyConfig {
	if len(c.Schedulers) == 0 {
		c.Schedulers = []string{"spark", "rupam"}
	}
	if c.Apps == 0 {
		c.Apps = 5
	}
	if c.MeanGap == 0 {
		c.MeanGap = 25
	}
	if c.Gen == (faults.GenConfig{}) {
		c.Gen = TenancyGen()
	}
	return c
}

// TenancyGen is the tenancy sweep's fault mix — DefaultGen stretched over
// the longer multi-application horizon, plus one driver crash so the
// routed crash/recovery path runs while sibling applications stay up.
func TenancyGen() faults.GenConfig {
	g := DefaultGen()
	g.Horizon = 150
	g.DriverCrashes = 1
	g.MinDriverRestart = 5
	g.MaxDriverRestart = 15
	return g
}

// TenancyRunRecord is one (scheduler, seed) outcome in the sweep.
type TenancyRunRecord struct {
	Scheduler string  `json:"scheduler"`
	Seed      uint64  `json:"seed"`
	Events    int     `json:"fault_events"`
	Makespan  float64 `json:"makespan_s"`

	Arrived   int `json:"arrived"`
	Admitted  int `json:"admitted"`
	Rejected  int `json:"rejected"`
	Completed int `json:"completed"`
	Aborted   int `json:"aborted"`

	Fingerprint string   `json:"fingerprint"`
	Violations  []string `json:"violations,omitempty"`
}

// TenancyReport is a full tenancy sweep's outcome.
type TenancyReport struct {
	Seeds      []uint64           `json:"seeds"`
	Runs       []TenancyRunRecord `json:"runs"`
	Violations int                `json:"violations"`
}

// TenancySoak sweeps every (scheduler, seed) pair. Panicking runs are
// recorded as violations, never propagated.
func TenancySoak(cfg TenancyConfig) *TenancyReport {
	cfg = cfg.withDefaults()
	rep := &TenancyReport{Seeds: cfg.Seeds}
	for _, seed := range cfg.Seeds {
		for _, sched := range cfg.Schedulers {
			rec := runTenancySeed(cfg, sched, seed)
			if !cfg.SkipVerify && rec.Fingerprint != "" {
				again := runTenancySeed(cfg, sched, seed)
				if again.Fingerprint != rec.Fingerprint {
					rec.Violations = append(rec.Violations, fmt.Sprintf(
						"non-deterministic: fingerprint %s on re-run, %s first",
						again.Fingerprint, rec.Fingerprint))
				}
			}
			rep.Violations += len(rec.Violations)
			rep.Runs = append(rep.Runs, rec)
		}
	}
	return rep
}

// runTenancySeed executes one multi-tenant run under one scheduler and
// checks both the manager's battery and the per-application invariants.
func runTenancySeed(cfg TenancyConfig, scheduler string, seed uint64) (rec TenancyRunRecord) {
	rec = TenancyRunRecord{Scheduler: scheduler, Seed: seed}
	defer func() {
		if r := recover(); r != nil {
			rec.Violations = append(rec.Violations, fmt.Sprintf("run panicked: %v", r))
		}
	}()

	plan := faults.RandomSchedule(seed, hydraNodeNames(), cfg.Gen)
	rec.Events = len(plan.Events)

	m := tenant.NewManager(tenant.Config{
		Scheduler: scheduler,
		Seed:      seed,
		Arrivals:  tenant.ArrivalConfig{Count: cfg.Apps, MeanGap: cfg.MeanGap},
		Faults:    plan,
		Spark:     tenancyHardened(),
	})
	rep := m.Run()

	rec.Makespan = rep.Makespan
	rec.Arrived = rep.Arrived
	rec.Admitted = rep.Admitted
	rec.Rejected = rep.Rejected
	rec.Completed = rep.Completed
	rec.Aborted = rep.Aborted
	rec.Fingerprint = rep.Fingerprint
	rec.Violations = append(rec.Violations, rep.Violations...)

	// Application-scoped battery: each tenant's completion, attempt and
	// queue-drain accounting must hold on its own, faults or not.
	for _, run := range m.AppRuns() {
		for _, v := range CheckAppInvariants(run.Result, run.Runtime) {
			rec.Violations = append(rec.Violations, fmt.Sprintf("%s: %s", run.Record.Label, v))
		}
	}
	return rec
}

// tenancyHardened mirrors HardenedConfig for the per-application runtimes
// (the manager owns seeds, WAL and fault installation itself).
func tenancyHardened() spark.Config {
	return spark.Config{
		TaskMaxFailures:        8,
		Blacklist:              spark.BlacklistConfig{Enabled: true},
		SpeculationMaxPerStage: 4,
		HeartbeatInterval:      0.5,
		HeartbeatTimeout:       4,
	}
}

// hydraNodeNames returns the reference cluster's node names (fault plans
// are drawn before the manager builds its own cluster).
func hydraNodeNames() []string {
	clu := cluster.New(simx.NewEngine())
	cluster.NewHydra(clu)
	return clu.NodeNames()
}

// WriteJSON writes the report as a deterministic, indented JSON artifact.
func (r *TenancyReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Print summarizes the sweep, one line per run plus a verdict.
func (r *TenancyReport) Print(w io.Writer) {
	fmt.Fprintf(w, "tenancy soak: %d seeds\n", len(r.Seeds))
	fmt.Fprintf(w, "%-6s %6s %6s %10s %4s %4s %4s %6s %s\n",
		"sched", "seed", "events", "makespan", "done", "abrt", "rej", "", "fingerprint")
	for _, rec := range r.Runs {
		fmt.Fprintf(w, "%-6s %6d %6d %10.1f %4d %4d %4d %6s %s\n",
			rec.Scheduler, rec.Seed, rec.Events, rec.Makespan,
			rec.Completed, rec.Aborted, rec.Rejected, "", rec.Fingerprint)
		for _, v := range rec.Violations {
			fmt.Fprintf(w, "    VIOLATION: %s\n", v)
		}
	}
	if r.Violations == 0 {
		fmt.Fprintf(w, "0 invariant violations across %d runs\n", len(r.Runs))
	} else {
		fmt.Fprintf(w, "%d INVARIANT VIOLATIONS across %d runs\n", r.Violations, len(r.Runs))
	}
}
