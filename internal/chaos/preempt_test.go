package chaos

import (
	"bytes"
	"testing"
)

// preemptSeeds mirrors tenancySeeds: small under -short, and at least the
// twenty-seed acceptance sweep otherwise.
func preemptSeeds(short bool) []uint64 {
	n := 20
	if short {
		n = 2
	}
	seeds := make([]uint64, n)
	for i := range seeds {
		seeds[i] = uint64(i + 1)
	}
	return seeds
}

// TestPreemptionSoak is the graceful-drain acceptance battery: market-
// hazard spot plans against elastic multi-tenant runs under both
// schedulers. Every notice must resolve, fenced nodes must see no
// launches, relocated outputs must survive their kill, announced losses
// must stay uncharged, the market must conserve instances and leases, and
// every seed must reproduce bit-identically.
func TestPreemptionSoak(t *testing.T) {
	rep := PreemptionSoak(PreemptConfig{Seeds: preemptSeeds(testing.Short())})
	sawKill := false
	for _, rec := range rep.Runs {
		for _, v := range rec.Violations {
			t.Errorf("scheduler=%s seed=%d: %s", rec.Scheduler, rec.Seed, v)
		}
		if rec.Kills > 0 {
			sawKill = true
		}
	}
	if !sawKill {
		t.Error("no run saw a spot kill — the sweep exercised nothing")
	}
	if t.Failed() {
		var buf bytes.Buffer
		rep.Print(&buf)
		t.Logf("full report:\n%s", buf.String())
	}
}

// TestPreemptionSoakIgnoreNotices guards the notice-blind baseline the
// elastic experiment measures against: same plans, notices dropped, kills
// discovered by heartbeat timeout. The manager-level battery (lease
// conservation, market end-state, bit-identity) must still hold even
// though the drain protocol never runs.
func TestPreemptionSoakIgnoreNotices(t *testing.T) {
	rep := PreemptionSoak(PreemptConfig{
		Seeds:         preemptSeeds(true),
		IgnoreNotices: true,
	})
	for _, rec := range rep.Runs {
		for _, v := range rec.Violations {
			t.Errorf("scheduler=%s seed=%d: %s", rec.Scheduler, rec.Seed, v)
		}
	}
}

// TestPreemptReportDeterministic requires the whole JSON artifact to be
// byte-identical across invocations.
func TestPreemptReportDeterministic(t *testing.T) {
	cfg := PreemptConfig{Seeds: []uint64{3}, Schedulers: []string{"rupam"}, SkipVerify: true}
	var a, b bytes.Buffer
	if err := PreemptionSoak(cfg).WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := PreemptionSoak(cfg).WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("preempt artifact differs between identical invocations:\n%s\n---\n%s",
			a.String(), b.String())
	}
}
