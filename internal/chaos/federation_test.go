package chaos

import "testing"

// TestFederationSoakSmoke sweeps a few seeds with crashes and message
// faults enabled; the full invariant battery must hold on every one.
func TestFederationSoakSmoke(t *testing.T) {
	rep := FederationSoak(FederationConfig{Seeds: []uint64{1, 2, 3}})
	if rep.Scenarios == 0 {
		t.Fatal("acceptance preamble did not run")
	}
	if got := len(rep.Runs); got != 3 {
		t.Fatalf("runs: got %d, want 3", got)
	}
	for _, rec := range rep.Runs {
		for _, v := range rec.Violations {
			t.Errorf("seed %d: %s", rec.Seed, v)
		}
		if rec.Completed+rec.Aborted == 0 {
			t.Errorf("seed %d: no applications resolved", rec.Seed)
		}
		if rec.Commits == 0 {
			t.Errorf("seed %d: no placements committed", rec.Seed)
		}
		if rec.AgentCrashes == 0 {
			t.Errorf("seed %d: no agent crash fired", rec.Seed)
		}
	}
	if rep.Violations != 0 {
		t.Fatalf("%d violations", rep.Violations)
	}
}

// TestFederationGenDrawsMessageFaults pins the sweep's generator mix to
// actually include the message-fault kinds the soak depends on.
func TestFederationGenDrawsMessageFaults(t *testing.T) {
	g := FederationGen()
	if g.MsgDrops == 0 || g.MsgDups == 0 || g.MsgDelays == 0 || g.MsgReorders == 0 {
		t.Fatalf("FederationGen missing message faults: %+v", g)
	}
	if g.DriverCrashes < 2 {
		t.Fatalf("FederationGen wants >=2 driver crashes, got %d", g.DriverCrashes)
	}
	if g.AgentCrashes < 1 {
		t.Fatalf("FederationGen wants >=1 agent crash, got %d", g.AgentCrashes)
	}
}
