package chaos

import (
	"encoding/json"
	"fmt"
	"io"

	"rupam/internal/cluster"
	"rupam/internal/faults"
	"rupam/internal/simx"
	"rupam/internal/streaming"
)

// StreamingConfig parameterizes the streaming soak: seeded topologies run
// under seeded fault plans (crashes, gray CPU degradation, spot
// reclamation, load spikes) for every placement policy, with one forced
// migration per seed so the drain → handoff → resume path is always
// exercised, and the full invariant battery checked after every run.
type StreamingConfig struct {
	// Seeds are the (topology, fault-plan) seeds to sweep.
	Seeds []uint64
	// Placers to drive; default all of streaming.PlacerNames.
	Placers []string
	// Gen parameterizes faults.RandomSchedule; zero value takes
	// StreamingGen.
	Gen faults.GenConfig
	// Horizon is per-run source time (default 100 s).
	Horizon float64
	// SkipVerify disables the second (bit-identity) run per seed.
	SkipVerify bool
}

func (c StreamingConfig) withDefaults() StreamingConfig {
	if len(c.Placers) == 0 {
		c.Placers = streaming.PlacerNames
	}
	if c.Gen == (faults.GenConfig{}) {
		c.Gen = StreamingGen()
	}
	if c.Horizon <= 0 {
		c.Horizon = 100
	}
	return c
}

// StreamingGen is the streaming soak's fault mix: a crash (sometimes
// permanent), two gray CPU-throttle windows, a spot reclamation with a
// short grace, and an offered-load spike — every trigger class the
// migration machinery reacts to.
func StreamingGen() faults.GenConfig {
	return faults.GenConfig{
		Horizon:        80,
		Crashes:        1,
		MinRecovery:    20,
		MaxRecovery:    50,
		PermanentProb:  0.2,
		CPUDegrades:    2,
		MinFactor:      0.2,
		MaxFactor:      0.6,
		MinDuration:    10,
		MaxDuration:    30,
		SpotPreempts:   1,
		MinGrace:       4,
		MaxGrace:       10,
		LoadSpikes:     1,
		MinSpikeFactor: 1.5,
		MaxSpikeFactor: 3,
	}
}

// StreamingRunRecord is one (placer, seed) outcome.
type StreamingRunRecord struct {
	Placer       string  `json:"placer"`
	Seed         uint64  `json:"seed"`
	Events       int     `json:"fault_events"`
	Drained      bool    `json:"drained"`
	QuiesceAt    float64 `json:"quiesce_at"`
	ThroughputHz float64 `json:"throughput_hz"`
	P99Ms        float64 `json:"p99_ms"`
	SLOAttain    float64 `json:"slo_attain"`
	Migrations   int     `json:"migrations"`
	Emergencies  int     `json:"emergencies"`
	LoadSpikes   int     `json:"load_spikes"`
	Fingerprint  string  `json:"fingerprint"`

	Violations []string `json:"violations,omitempty"`
}

// StreamingReport is a full streaming sweep's outcome.
type StreamingReport struct {
	Seeds      []uint64             `json:"seeds"`
	Runs       []StreamingRunRecord `json:"runs"`
	Violations int                  `json:"violations"`
}

// StreamingSoak sweeps every (placer, seed) pair. Each run's invariants:
// per-channel flow conservation, operator flow consistency, end-to-end
// exactly-once across every migration (including the forced one), bounded
// backlog, a clean drain, substrate conservation, and bit-identical
// re-runs.
func StreamingSoak(cfg StreamingConfig) *StreamingReport {
	cfg = cfg.withDefaults()
	rep := &StreamingReport{Seeds: cfg.Seeds}
	for _, seed := range cfg.Seeds {
		for _, placer := range cfg.Placers {
			rec := runStreamingSeed(cfg, placer, seed)
			if !cfg.SkipVerify {
				again := runStreamingSeed(cfg, placer, seed)
				if again.Fingerprint != rec.Fingerprint {
					rec.Violations = append(rec.Violations, fmt.Sprintf(
						"non-deterministic: fingerprint %s on re-run, %s first",
						again.Fingerprint, rec.Fingerprint))
				}
			}
			rep.Violations += len(rec.Violations)
			rep.Runs = append(rep.Runs, rec)
		}
	}
	return rep
}

// runStreamingSeed executes one streaming plan under one placer and runs
// the battery. A panic anywhere inside becomes a violation.
func runStreamingSeed(cfg StreamingConfig, placer string, seed uint64) (rec StreamingRunRecord) {
	rec = StreamingRunRecord{Placer: placer, Seed: seed}
	defer func() {
		if r := recover(); r != nil {
			rec.Violations = append(rec.Violations, fmt.Sprintf("run panicked: %v", r))
		}
	}()

	nodes := cluster.NewHydra(cluster.New(simx.NewEngine())).NodeNames()
	plan := faults.RandomSchedule(seed, nodes, cfg.Gen)
	rec.Events = len(plan.Events)

	res := streaming.Run(streaming.Config{
		Seed:           seed,
		Placer:         placer,
		Horizon:        cfg.Horizon,
		Warmup:         cfg.Horizon / 5,
		Faults:         plan,
		ForceMigrateAt: cfg.Horizon * 0.4,
	})

	rec.Drained = res.Drained
	rec.QuiesceAt = res.QuiesceAt
	rec.ThroughputHz = res.ThroughputHz
	rec.P99Ms = res.P99Ms
	rec.SLOAttain = res.SLOAttain
	rec.Migrations = len(res.Migrations)
	for _, m := range res.Migrations {
		if m.Emergency {
			rec.Emergencies++
		}
	}
	rec.LoadSpikes = res.LoadSpikes
	rec.Fingerprint = fmt.Sprintf("%016x", res.Fingerprint())
	rec.Violations = append(rec.Violations, streaming.CheckInvariants(res)...)
	rec.Violations = append(rec.Violations,
		CheckSubstrateConservation(res.Execs, res.Clu, res.Cache)...)
	return rec
}

// WriteJSON writes the report as a deterministic, indented JSON artifact.
func (r *StreamingReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Print summarizes the sweep, one line per run plus a verdict.
func (r *StreamingReport) Print(w io.Writer) {
	fmt.Fprintf(w, "streaming soak: %d seeds\n", len(r.Seeds))
	fmt.Fprintf(w, "%-9s %6s %6s %7s %9s %8s %5s %5s %s\n",
		"placer", "seed", "events", "drain", "thr(Hz)", "p99(ms)", "migs", "emerg", "fingerprint")
	for _, rec := range r.Runs {
		drain := "yes"
		if !rec.Drained {
			drain = "NO"
		}
		fmt.Fprintf(w, "%-9s %6d %6d %7s %9.1f %8.0f %5d %5d %s\n",
			rec.Placer, rec.Seed, rec.Events, drain, rec.ThroughputHz,
			rec.P99Ms, rec.Migrations, rec.Emergencies, rec.Fingerprint)
		for _, v := range rec.Violations {
			fmt.Fprintf(w, "    VIOLATION: %s\n", v)
		}
	}
	if r.Violations == 0 {
		fmt.Fprintf(w, "0 invariant violations across %d runs\n", len(r.Runs))
	} else {
		fmt.Fprintf(w, "%d INVARIANT VIOLATIONS across %d runs\n", r.Violations, len(r.Runs))
	}
}
