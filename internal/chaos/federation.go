package chaos

import (
	"encoding/json"
	"fmt"
	"io"

	"rupam/internal/faults"
	"rupam/internal/federation"
)

// Federation soak: the multi-driver counterpart of the tenancy soak. Each
// seed runs several federated drivers over one shared cluster under a
// random fault plan that includes driver crashes, amnesiac agent
// crash/restart episodes AND an unreliable control plane (dropped,
// duplicated, delayed, reordered protocol messages), then asserts the
// protocol invariant battery — every slot
// claimed by at most one committed placement at all times, exactly-once
// launch per attempt, all claims of a crashed driver eventually released,
// slot conservation across agents — plus the per-application chaos
// invariants and bit-identical re-runs. The table-driven protocol
// acceptance scenarios run once per soak as a fast preamble, so a
// protocol regression fails before any expensive sweep.

// FederationConfig parameterizes a federation soak sweep. The zero value
// (plus Seeds) is usable: two drivers, four apps, FederationGen faults,
// every seed run twice for the bit-identity check.
type FederationConfig struct {
	// Seeds are the sweep's plan seeds.
	Seeds []uint64
	// Drivers is the scheduler shard count per run (default 2).
	Drivers int
	// Apps is the application count per run (default 4).
	Apps int
	// Gen parameterizes faults.RandomSchedule; zero value takes
	// FederationGen.
	Gen faults.GenConfig
	// SkipVerify disables the second (bit-identity) run per seed.
	SkipVerify bool
}

func (c FederationConfig) withDefaults() FederationConfig {
	if c.Drivers == 0 {
		c.Drivers = 2
	}
	if c.Apps == 0 {
		c.Apps = 4
	}
	if c.Gen.Horizon == 0 && c.Gen.DriverCrashes == 0 && c.Gen.MsgDrops == 0 {
		c.Gen = FederationGen()
	}
	return c
}

// FederationGen is the federation sweep's fault mix: the default node
// faults stretched over the longer multi-application horizon, two driver
// crashes so more than one shard's crash/recovery path runs, every
// message-fault kind on the control plane, and two agent crashes so every
// seed exercises the incarnation fence and RESYNC rebuild.
func FederationGen() faults.GenConfig {
	g := DefaultGen()
	g.Horizon = 150
	g.DriverCrashes = 2
	g.MinDriverRestart = 5
	g.MaxDriverRestart = 15
	g.MsgDrops = 2
	g.MsgDups = 1
	g.MsgDelays = 1
	g.MsgReorders = 1
	g.AgentCrashes = 2
	g.MinAgentDowntime = 3
	g.MaxAgentDowntime = 8
	return g
}

// FederationRunRecord is one seed's outcome in the sweep.
type FederationRunRecord struct {
	Seed     uint64  `json:"seed"`
	Drivers  int     `json:"drivers"`
	Events   int     `json:"fault_events"`
	Makespan float64 `json:"makespan_s"`

	Completed int `json:"completed"`
	Aborted   int `json:"aborted"`
	Commits   int `json:"commits"`
	Crashes   int `json:"driver_crashes"`

	AgentCrashes  int `json:"agent_crashes"`
	AgentRestarts int `json:"agent_restarts"`
	Resyncs       int `json:"agent_resyncs"`

	MsgSent    int `json:"msg_sent"`
	MsgDropped int `json:"msg_dropped"`
	MsgDuped   int `json:"msg_duped"`

	Fingerprint string   `json:"fingerprint"`
	Violations  []string `json:"violations,omitempty"`
}

// FederationReport is a full federation sweep's outcome.
type FederationReport struct {
	Seeds      []uint64              `json:"seeds"`
	Drivers    int                   `json:"drivers"`
	Scenarios  int                   `json:"acceptance_scenarios"`
	Runs       []FederationRunRecord `json:"runs"`
	Violations int                   `json:"violations"`
}

// FederationSoak sweeps every seed. Panicking runs are recorded as
// violations, never propagated.
func FederationSoak(cfg FederationConfig) *FederationReport {
	cfg = cfg.withDefaults()
	rep := &FederationReport{Seeds: cfg.Seeds, Drivers: cfg.Drivers}

	// Acceptance preamble: the scripted interleavings must hold before
	// any randomized sweep is worth running.
	for _, s := range federation.AcceptanceScenarios() {
		rep.Scenarios++
		for _, f := range federation.RunAcceptScenario(s) {
			rep.Violations++
			rep.Runs = append(rep.Runs, FederationRunRecord{
				Violations: []string{fmt.Sprintf("acceptance %s: %s", s.Name, f)},
			})
		}
	}

	for _, seed := range cfg.Seeds {
		rec := runFederationSeed(cfg, seed)
		if !cfg.SkipVerify && rec.Fingerprint != "" {
			again := runFederationSeed(cfg, seed)
			if again.Fingerprint != rec.Fingerprint {
				rec.Violations = append(rec.Violations, fmt.Sprintf(
					"non-deterministic: fingerprint %s on re-run, %s first",
					again.Fingerprint, rec.Fingerprint))
			}
		}
		rep.Violations += len(rec.Violations)
		rep.Runs = append(rep.Runs, rec)
	}
	return rep
}

// runFederationSeed executes one federated run under one random fault
// plan and layers the chaos batteries on top of the protocol's own
// end-state checks.
func runFederationSeed(cfg FederationConfig, seed uint64) (rec FederationRunRecord) {
	rec = FederationRunRecord{Seed: seed, Drivers: cfg.Drivers}
	defer func() {
		if r := recover(); r != nil {
			rec.Violations = append(rec.Violations, fmt.Sprintf("run panicked: %v", r))
		}
	}()

	plan := faults.RandomSchedule(seed, hydraNodeNames(), cfg.Gen)
	rec.Events = len(plan.Events)

	res := federation.Run(federation.Config{
		Drivers: cfg.Drivers,
		Apps:    cfg.Apps,
		Seed:    seed,
		Faults:  plan,
		Spark:   tenancyHardened(),
	})

	rec.Makespan = res.Makespan
	rec.Completed = res.Completed
	rec.Aborted = res.Aborted
	rec.Commits = res.Commits
	rec.Crashes = res.Crashes
	rec.AgentCrashes = res.AgentCrashes
	rec.AgentRestarts = res.AgentRestarts
	rec.Resyncs = res.Resyncs
	rec.MsgSent = res.MsgSent
	rec.MsgDropped = res.MsgDropped
	rec.MsgDuped = res.MsgDuped
	rec.Fingerprint = res.Fingerprint
	rec.Violations = append(rec.Violations, res.Violations...)

	// The sweep's whole point is exercising the agent fault domain: a plan
	// that drew agent crashes but never landed one is a harness regression,
	// not a lucky seed.
	if cfg.Gen.AgentCrashes > 0 && res.AgentCrashes == 0 {
		rec.Violations = append(rec.Violations, fmt.Sprintf(
			"plan drew %d agent crashes but none fired", cfg.Gen.AgentCrashes))
	}

	// Per-application battery: completion, attempt and queue-drain
	// accounting must hold for every app regardless of which driver owned
	// it; the shared substrate must conserve slots once overall.
	for i, rt := range res.AppRuntimes {
		for _, v := range CheckAppInvariants(res.AppResults[i], rt) {
			rec.Violations = append(rec.Violations, fmt.Sprintf("app %d: %s", i, v))
		}
	}
	if len(res.AppRuntimes) > 0 {
		for _, v := range CheckResourceConservation(res.AppRuntimes[0]) {
			rec.Violations = append(rec.Violations, "conservation: "+v)
		}
	}
	return rec
}

// WriteJSON writes the report as a deterministic, indented JSON artifact.
func (r *FederationReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Print summarizes the sweep, one line per run plus a verdict.
func (r *FederationReport) Print(w io.Writer) {
	fmt.Fprintf(w, "federation soak: %d seeds, %d drivers, %d acceptance scenarios\n",
		len(r.Seeds), r.Drivers, r.Scenarios)
	fmt.Fprintf(w, "%6s %6s %10s %4s %4s %8s %6s %6s %6s %s\n",
		"seed", "events", "makespan", "done", "abrt", "commits", "crash", "agent", "drops", "fingerprint")
	for _, rec := range r.Runs {
		fmt.Fprintf(w, "%6d %6d %10.1f %4d %4d %8d %6d %6d %6d %s\n",
			rec.Seed, rec.Events, rec.Makespan, rec.Completed, rec.Aborted,
			rec.Commits, rec.Crashes, rec.AgentCrashes, rec.MsgDropped, rec.Fingerprint)
		for _, v := range rec.Violations {
			fmt.Fprintf(w, "    VIOLATION: %s\n", v)
		}
	}
	if r.Violations == 0 {
		fmt.Fprintf(w, "0 invariant violations across %d runs\n", len(r.Runs))
	} else {
		fmt.Fprintf(w, "%d INVARIANT VIOLATIONS across %d runs\n", r.Violations, len(r.Runs))
	}
}
