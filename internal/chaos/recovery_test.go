package chaos

import (
	"bytes"
	"testing"

	"rupam/internal/cluster"
	"rupam/internal/core"
	"rupam/internal/executor"
	"rupam/internal/faults"
	"rupam/internal/hdfs"
	"rupam/internal/rdd"
	"rupam/internal/simx"
	"rupam/internal/spark"
	"rupam/internal/task"
)

// TestRecoverySoak is the crash-recovery acceptance battery: for each seed
// and scheduler, a run whose fault plan includes a driver crash is checked
// against the unfailed reference — same succeeded-task set, same per-stage
// shuffle outputs, no completion lost or double-counted, WAL replay
// byte-identical — and each trial is run twice for bit-identity.
func TestRecoverySoak(t *testing.T) {
	rep := RecoverySoak(Config{Seeds: soakSeeds(testing.Short())[:seedCap(testing.Short())]})
	for _, rec := range rep.Runs {
		for _, v := range rec.Violations {
			t.Errorf("scheduler=%s seed=%d: %s", rec.Scheduler, rec.Seed, v)
		}
	}
	if rep.CrashesHit != len(rep.Runs) {
		t.Errorf("driver crash fired in %d of %d trials; the recovery path went unexercised",
			rep.CrashesHit, len(rep.Runs))
	}
	if t.Failed() {
		var buf bytes.Buffer
		rep.Print(&buf)
		t.Logf("full report:\n%s", buf.String())
	}
}

// seedCap bounds the recovery sweep: the full ten-seed acceptance battery
// normally, a faster sweep under -short.
func seedCap(short bool) int {
	if short {
		return 3
	}
	return 10
}

// TestRecoveryReportDeterministic requires the whole recovery-sweep JSON
// artifact to be byte-identical across invocations.
func TestRecoveryReportDeterministic(t *testing.T) {
	cfg := Config{Seeds: []uint64{3, 7}, SkipVerify: true}
	var a, b bytes.Buffer
	if err := RecoverySoak(cfg).WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := RecoverySoak(cfg).WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("recovery artifact differs between identical invocations:\n%s\n---\n%s",
			a.String(), b.String())
	}
}

// raceWorld builds the three-class cluster the spark package's race tests
// use, on a fresh engine.
func raceWorld() (*simx.Engine, *cluster.Cluster, *hdfs.Store) {
	executor.ResetRunSeq()
	eng := simx.NewEngine()
	clu := cluster.New(eng)
	clu.AddNode(cluster.NodeSpec{
		Name: "fast", Class: "fast", Cores: 4, FreqGHz: 3,
		MemBytes: 16 * cluster.GB, NetBandwidth: cluster.GbE(1),
		SSD: true, DiskReadBW: cluster.MBps(400), DiskWriteBW: cluster.MBps(300),
	})
	clu.AddNode(cluster.NodeSpec{
		Name: "slow", Class: "slow", Cores: 8, FreqGHz: 1,
		MemBytes: 32 * cluster.GB, NetBandwidth: cluster.GbE(10),
		DiskReadBW: cluster.MBps(120), DiskWriteBW: cluster.MBps(100),
	})
	clu.AddNode(cluster.NodeSpec{
		Name: "gpu", Class: "gpu", Cores: 4, FreqGHz: 1.5,
		MemBytes: 16 * cluster.GB, NetBandwidth: cluster.GbE(1),
		DiskReadBW: cluster.MBps(120), DiskWriteBW: cluster.MBps(100),
		GPUs: 1, GPURateGHz: 30,
	})
	store := hdfs.NewStore(clu.NodeNames(), 2, 99)
	return eng, clu, store
}

func raceApp(store *hdfs.Store) *task.Application {
	ctx := rdd.NewContext("race-app", store, 1)
	pts := ctx.Read(store.CreateEven("in", 640*1e6, 8)).
		Map("parse", rdd.Profile{CPUPerByte: 5e-9, MemPerByte: 1.2}).Cache()
	for i := 0; i < 3; i++ {
		pts.Map("work", rdd.Profile{CPUPerByte: 20e-9, MemPerByte: 1, OutRatio: 1e-4}).
			Shuffle("agg", rdd.Profile{}, 4).
			Count("job")
	}
	return ctx.App()
}

// TestCrashDuringSpecRace crashes the driver while a speculative copy and
// its original are both in flight (a heartbeat partition plus aggressive
// speculation manufactures the race; the crash time sweeps across the race
// window so at least one sweep point catches copies live). After recovery,
// under both schedulers, each task must be counted complete exactly once —
// the invariant battery's double-count rule over the attempt metrics.
func TestCrashDuringSpecRace(t *testing.T) {
	for _, schedName := range []string{"spark", "rupam"} {
		specLive := false
		for crashAt := 1.75; crashAt <= 5.0; crashAt += 0.25 {
			eng, clu, store := raceWorld()
			app := raceApp(store)
			plan := &faults.Schedule{Events: []faults.Event{
				{Kind: faults.HeartbeatLoss, Node: "slow", At: 1.5, Duration: 2.5},
				{Kind: faults.DriverCrash, At: crashAt, Duration: 0.5},
			}}
			var sched spark.Scheduler
			if schedName == "rupam" {
				sched = core.New(core.Config{})
			} else {
				sched = spark.NewDefaultScheduler()
			}
			rt := spark.NewRuntime(eng, clu, sched, spark.Config{
				Seed:              3,
				HeartbeatInterval: 0.25, HeartbeatTimeout: 1,
				SpeculationInterval: 0.25, SpeculationQuantile: 0.1, SpeculationMultiplier: 1.05,
				SampleInterval: -1,
				Faults:         plan,
			})
			res := rt.Run(app)

			if res.Aborted != nil {
				t.Fatalf("%s crashAt=%.2f: run aborted: %v", schedName, crashAt, res.Aborted)
			}
			if res.DriverCrashes != 1 || res.DriverRecoveries != 1 {
				t.Fatalf("%s crashAt=%.2f: crashes=%d recoveries=%d, want 1/1",
					schedName, crashAt, res.DriverCrashes, res.DriverRecoveries)
			}
			for _, v := range CheckInvariants(res, rt) {
				t.Errorf("%s crashAt=%.2f: %s", schedName, crashAt, v)
			}
			if len(res.SpecLiveAtCrash) > 0 && res.SpecLiveAtCrash[0] > 0 {
				specLive = true
			}
		}
		if !specLive {
			t.Errorf("%s: no sweep point caught a speculative copy in flight at the crash; "+
				"the race under test never happened", schedName)
		}
	}
}
