package chaos

import (
	"fmt"
	"sort"

	"rupam/internal/cluster"
	"rupam/internal/executor"
	"rupam/internal/spark"
	"rupam/internal/task"
)

// This file is the invariant battery: a library of post-run checks over a
// finished runtime, usable both by the soak harness and directly by tests
// (package experiments reuses CheckResourceConservation instead of
// hand-rolling the same assertions).

// pendingCounter is the optional scheduler capability the queue-drain
// check uses; both shipped schedulers implement it.
type pendingCounter interface {
	PendingTasks() int
}

// CheckInvariants runs every post-run invariant against a finished run
// and returns the violations (empty means the run is clean). It asserts:
//
//   - the app completed every job, or aborted with a structured error;
//   - no task completion was lost (completed runs: exactly one successful
//     attempt per task) or double-counted (any run: at most one);
//   - attempt accounting matches the driver's launch count;
//   - no attempt is still registered in-flight;
//   - completed runs drained the straggler set and the scheduler queues;
//   - resource conservation (CheckResourceConservation).
func CheckInvariants(res *spark.Result, rt *spark.Runtime) []string {
	return append(CheckAppInvariants(res, rt), CheckResourceConservation(rt)...)
}

// CheckAppInvariants is the application-scoped battery: everything in
// CheckInvariants except resource conservation. In a multi-tenant run the
// executors, heaps and cache registry are shared across applications, so
// per-node conservation only holds for the whole substrate (the tenant
// manager's end-state check) — but each application's completion, attempt
// and queue-drain accounting must still hold on its own.
func CheckAppInvariants(res *spark.Result, rt *spark.Runtime) []string {
	var v []string
	completed := res.Aborted == nil

	if completed && len(res.JobEnds) != len(res.App.Jobs) {
		v = append(v, fmt.Sprintf("completed run finished %d of %d jobs",
			len(res.JobEnds), len(res.App.Jobs)))
	}

	attempts := 0
	for _, tk := range res.App.AllTasks() {
		attempts += len(tk.Attempts)
		succ := 0
		for _, a := range tk.Attempts {
			if a.Succeeded() {
				succ++
			}
		}
		// A map-output rollback legitimately re-runs an already-succeeded
		// task, so each resubmission licenses one extra success; a
		// speculative race whose copies all completed while the driver was
		// down likewise yields one redundant successful attempt per drained
		// duplicate. Anything beyond that is a completion counted twice.
		if max := 1 + rt.ResubmitCount(tk.ID) + rt.DuplicateSuccessCount(tk.ID); succ > max {
			v = append(v, fmt.Sprintf(
				"%s: %d successful attempts with %d resubmissions and %d crash-window duplicates (completion double-counted)",
				tk, succ, rt.ResubmitCount(tk.ID), rt.DuplicateSuccessCount(tk.ID)))
		}
		if completed {
			if tk.State != task.Finished {
				v = append(v, fmt.Sprintf("%s: not finished after a completed run", tk))
			} else if succ == 0 {
				v = append(v, fmt.Sprintf("%s: finished with no successful attempt", tk))
			}
		}
	}
	if attempts != res.Launches {
		v = append(v, fmt.Sprintf("attempt records %d != launches %d", attempts, res.Launches))
	}

	if n := rt.LiveAttempts(); n != 0 {
		v = append(v, fmt.Sprintf("%d attempts still registered in-flight", n))
	}
	if completed {
		if n := rt.SpeculatableCount(); n != 0 {
			v = append(v, fmt.Sprintf("straggler set not drained: %d entries", n))
		}
		if pc, ok := rt.Scheduler().(pendingCounter); ok {
			if n := pc.PendingTasks(); n != 0 {
				v = append(v, fmt.Sprintf("scheduler queues not drained: %d pending tasks", n))
			}
		}
	}

	return v
}

// CheckResourceConservation verifies that after a run no simulated
// resource is still held: nothing is running, GPU tokens are returned,
// each executor's heap holds exactly its cached bytes, and no launch-time
// memory reservation dangles. It returns the violations found.
func CheckResourceConservation(rt *spark.Runtime) []string {
	return CheckSubstrateConservation(rt.Execs, rt.Clu, rt.Cache)
}

// CheckSubstrateConservation is CheckResourceConservation over a bare
// substrate — the executor registry, cluster, and cache tracker — for
// harnesses with no spark.Runtime (the streaming soak) or with several
// sharing one substrate (the tenancy soak's end-state check).
func CheckSubstrateConservation(execs map[string]*executor.Executor, clu *cluster.Cluster, cache *executor.CacheTracker) []string {
	var v []string
	names := make([]string, 0, len(execs))
	for name := range execs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ex := execs[name]
		if n := ex.RunningTasks(); n != 0 {
			v = append(v, fmt.Sprintf("%s: %d tasks still running", name, n))
		}
		if node := clu.Node(name); node != nil && node.GPU.InUse() != 0 {
			v = append(v, fmt.Sprintf("%s: %d GPU tokens leaked", name, node.GPU.InUse()))
		}
		if cached := cache.NodeBytes(name); ex.Heap().Used() != cached {
			v = append(v, fmt.Sprintf("%s: heap holds %d bytes but cache accounts for %d",
				name, ex.Heap().Used(), cached))
		}
		if ex.ProjectedFree() != ex.HeapFree() {
			v = append(v, fmt.Sprintf("%s: dangling memory reservation (%d bytes)",
				name, ex.HeapFree()-ex.ProjectedFree()))
		}
	}
	return v
}
