package chaos

import (
	"bytes"
	"strings"
	"testing"
)

// soakSeeds returns the test's seed budget: a handful under -short, a
// larger fixed sweep otherwise. Fixed (not time-derived) so CI failures
// reproduce with `go test -run TestChaosSoak`.
func soakSeeds(short bool) []uint64 {
	n := 12
	if short {
		n = 4
	}
	seeds := make([]uint64, n)
	for i := range seeds {
		seeds[i] = uint64(i + 1)
	}
	return seeds
}

// TestChaosSoak is the soak invariant battery: random fault plans against
// both schedulers, every invariant checked after every run, every seed
// run twice for bit-identity.
func TestChaosSoak(t *testing.T) {
	rep := Soak(Config{Seeds: soakSeeds(testing.Short())})
	for _, rec := range rep.Runs {
		for _, v := range rec.Violations {
			t.Errorf("scheduler=%s seed=%d: %s", rec.Scheduler, rec.Seed, v)
		}
	}
	if t.Failed() {
		var buf bytes.Buffer
		rep.Print(&buf)
		t.Logf("full report:\n%s", buf.String())
	}
}

// TestSoakDeterministicReport re-runs a tiny sweep and requires the whole
// JSON artifact — not just per-run fingerprints — to be byte-identical.
func TestSoakDeterministicReport(t *testing.T) {
	cfg := Config{Seeds: []uint64{3, 7}}
	var a, b bytes.Buffer
	if err := Soak(cfg).WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := Soak(cfg).WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("sweep artifact differs between identical invocations:\n%s\n---\n%s",
			a.String(), b.String())
	}
}

// TestSoakExercisesFaults guards against the harness silently generating
// schedules that never touch the run: across the sweep, at least some
// runs must observe gray failures (flakes) and fault-tolerance activity.
func TestSoakExercisesFaults(t *testing.T) {
	rep := Soak(Config{Seeds: soakSeeds(testing.Short()), SkipVerify: true})
	flakes, lost, events := 0, 0, 0
	for _, rec := range rep.Runs {
		flakes += rec.TaskFlakes
		lost += rec.ExecutorsLost
		events += rec.Events
	}
	if events == 0 {
		t.Fatal("sweep generated zero fault events")
	}
	if flakes == 0 {
		t.Error("no run observed a task flake; gray-failure path not exercised")
	}
	if lost == 0 {
		t.Error("no run lost an executor; crash/heartbeat path not exercised")
	}
}

// TestSoakUnknownScheduler: a bad scheduler name must surface as a
// recorded panic violation, not crash the sweep.
func TestSoakUnknownScheduler(t *testing.T) {
	rep := Soak(Config{Seeds: []uint64{1}, Schedulers: []string{"nope"}})
	if rep.Violations == 0 {
		t.Fatal("expected a violation for unknown scheduler")
	}
	if !strings.Contains(rep.Runs[0].Violations[0], "unknown scheduler") {
		t.Fatalf("unexpected violation: %v", rep.Runs[0].Violations)
	}
}
