package chaos

import (
	"bytes"
	"strings"
	"testing"
)

// TestStreamingSoakClean sweeps a few seeds across every placer with the
// full fault mix and expects zero violations: exactly-once across forced
// and fault-driven migrations, bounded backlog, flow conservation, clean
// drains, substrate conservation, and bit-identical re-runs.
func TestStreamingSoakClean(t *testing.T) {
	rep := StreamingSoak(StreamingConfig{Seeds: []uint64{1, 2, 3}})
	if rep.Violations != 0 {
		var b bytes.Buffer
		rep.Print(&b)
		t.Fatalf("streaming soak violations:\n%s", b.String())
	}
	if len(rep.Runs) != 9 {
		t.Fatalf("expected 3 seeds × 3 placers = 9 runs, got %d", len(rep.Runs))
	}
	for _, rec := range rep.Runs {
		if rec.Migrations == 0 {
			t.Errorf("%s/%d: no migration despite the forced trigger", rec.Placer, rec.Seed)
		}
		if rec.Fingerprint == "" || rec.Fingerprint == "0000000000000000" {
			t.Errorf("%s/%d: empty fingerprint", rec.Placer, rec.Seed)
		}
	}
}

// TestStreamingSoakDetectsNonDeterminism is a meta-test of the harness
// plumbing: the JSON artifact round-trips and the printout carries the
// verdict line.
func TestStreamingSoakArtifacts(t *testing.T) {
	rep := StreamingSoak(StreamingConfig{
		Seeds:   []uint64{4},
		Placers: []string{"rupam"},
	})
	var j bytes.Buffer
	if err := rep.WriteJSON(&j); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(j.String(), "\"placer\": \"rupam\"") {
		t.Fatalf("JSON artifact missing fields: %s", j.String())
	}
	var p bytes.Buffer
	rep.Print(&p)
	if !strings.Contains(p.String(), "invariant violations") &&
		!strings.Contains(p.String(), "INVARIANT VIOLATIONS") {
		t.Fatalf("printout missing verdict: %s", p.String())
	}
}
