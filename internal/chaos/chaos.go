// Package chaos is a seeded soak harness for the fault model: it draws
// random fault plans over the Hydra cluster, runs each against both the
// stock Spark scheduler and RUPAM, and asserts a battery of invariants
// after every run — every job completes or aborts with a structured
// error, no task completion is lost or double-counted, resources are
// conserved, driver and scheduler state drains, and an identical seed
// reproduces a bit-identical run. Everything is derived from the seeds,
// so a failing plan is a one-line reproduction.
package chaos

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"math"

	"rupam/internal/cluster"
	"rupam/internal/core"
	"rupam/internal/executor"
	"rupam/internal/faults"
	"rupam/internal/hdfs"
	"rupam/internal/simx"
	"rupam/internal/spark"
	"rupam/internal/workloads"
)

// Config parameterizes a soak sweep. The zero value (plus Seeds) is a
// usable configuration: a reduced PageRank under DefaultGen faults, both
// schedulers, every seed run twice for the determinism check.
type Config struct {
	// Workload is a package workloads name; default "PR" with reduced
	// parameters (chaos wants many short runs, not a few long ones).
	Workload string
	// Params overrides the workload defaults (zero fields keep the
	// chaos-reduced ones).
	Params workloads.Params
	// Schedulers to drive; default both ("spark", "rupam").
	Schedulers []string
	// Seeds are the fault-plan seeds to sweep.
	Seeds []uint64
	// Gen parameterizes faults.RandomSchedule; zero value takes
	// DefaultGen.
	Gen faults.GenConfig
	// SkipVerify disables the second (bit-identity) run per seed.
	SkipVerify bool
}

func (c Config) withDefaults() Config {
	if c.Workload == "" {
		c.Workload = "PR"
	}
	if c.Workload == "PR" && c.Params.InputGB == 0 && c.Params.Partitions == 0 &&
		c.Params.Iterations == 0 {
		c.Params = workloads.Params{InputGB: 0.5, Partitions: 16, Iterations: 2}
	}
	if len(c.Schedulers) == 0 {
		c.Schedulers = []string{"spark", "rupam"}
	}
	if c.Gen == (faults.GenConfig{}) {
		c.Gen = DefaultGen()
	}
	return c
}

// DefaultGen is the soak sweep's fault mix: one crash (sometimes
// permanent), NIC/disk windows, CPU-throttle windows, a heap squeeze, a
// couple of task-flake windows, and a heartbeat partition. The horizon is
// deliberately shorter than the reduced workload's healthy runtime
// (~25 s) so events land while work is in flight, not after the app has
// already finished.
func DefaultGen() faults.GenConfig {
	return faults.GenConfig{
		Horizon:         20,
		Crashes:         1,
		MinRecovery:     15,
		MaxRecovery:     40,
		PermanentProb:   0.15,
		Degrades:        2,
		MinFactor:       0.2,
		MaxFactor:       0.7,
		MinDuration:     8,
		MaxDuration:     30,
		HeartbeatLosses: 1,
		CPUDegrades:     2,
		MemPressures:    1,
		TaskFlakes:      2,
		MinFlakeProb:    0.15,
		MaxFlakeProb:    0.5,
	}
}

// RunRecord is one (scheduler, seed) outcome in the sweep artifact.
type RunRecord struct {
	Scheduler string  `json:"scheduler"`
	Seed      uint64  `json:"seed"`
	Events    int     `json:"fault_events"`
	Duration  float64 `json:"duration_s"`
	Completed bool    `json:"completed"`
	Aborted   string  `json:"aborted,omitempty"`

	Launches          int `json:"launches"`
	SpecCopies        int `json:"spec_copies"`
	OOMs              int `json:"ooms"`
	Crashes           int `json:"crashes"`
	FailStops         int `json:"fail_stops"`
	TaskFlakes        int `json:"task_flakes"`
	ExecutorsLost     int `json:"executors_lost"`
	ExecutorsRejoined int `json:"executors_rejoined"`
	FetchFailures     int `json:"fetch_failures"`
	Resubmissions     int `json:"resubmissions"`
	NodesBlacklisted  int `json:"nodes_blacklisted"`

	// Fingerprint hashes the run's full observable outcome (durations,
	// per-attempt timelines, counters); two runs of the same seed must
	// produce the same value.
	Fingerprint string `json:"fingerprint"`

	Violations []string `json:"violations,omitempty"`
}

// Report is a full sweep's outcome.
type Report struct {
	Workload   string      `json:"workload"`
	Seeds      []uint64    `json:"seeds"`
	Runs       []RunRecord `json:"runs"`
	Violations int         `json:"violations"`
}

// Soak sweeps every (scheduler, seed) pair and returns the report. Runs
// never panic out: a panicking run (livelock watchdog, internal
// inconsistency) is recorded as a violation on its record.
func Soak(cfg Config) *Report {
	cfg = cfg.withDefaults()
	rep := &Report{Workload: cfg.Workload, Seeds: cfg.Seeds}
	for _, seed := range cfg.Seeds {
		for _, sched := range cfg.Schedulers {
			rec := runSeed(cfg, sched, seed)
			if !cfg.SkipVerify && rec.Aborted != "panic" {
				again := runSeed(cfg, sched, seed)
				if again.Fingerprint != rec.Fingerprint {
					rec.Violations = append(rec.Violations, fmt.Sprintf(
						"non-deterministic: fingerprint %s on re-run, %s first",
						again.Fingerprint, rec.Fingerprint))
				}
			}
			rep.Violations += len(rec.Violations)
			rep.Runs = append(rep.Runs, rec)
		}
	}
	return rep
}

// runSeed executes one plan under one scheduler and checks the
// invariants. A panic anywhere inside the run becomes a violation.
func runSeed(cfg Config, scheduler string, seed uint64) (rec RunRecord) {
	rec = RunRecord{Scheduler: scheduler, Seed: seed}
	defer func() {
		if r := recover(); r != nil {
			rec.Aborted = "panic"
			rec.Violations = append(rec.Violations, fmt.Sprintf("run panicked: %v", r))
		}
	}()

	executor.ResetRunSeq()
	eng := simx.NewEngine()
	clu := cluster.New(eng)
	cluster.NewHydra(clu)
	store := hdfs.NewStore(clu.NodeNames(), 2, seed*2654435761+1)
	p := cfg.Params
	if p.Seed == 0 {
		p.Seed = seed*7 + 42
	}
	app := workloads.Build(cfg.Workload, store, p)

	plan := faults.RandomSchedule(seed, clu.NodeNames(), cfg.Gen)
	rec.Events = len(plan.Events)

	var sched spark.Scheduler
	switch scheduler {
	case "rupam":
		sched = core.New(core.Config{})
	case "spark":
		sched = spark.NewDefaultScheduler()
	default:
		panic(fmt.Sprintf("chaos: unknown scheduler %q", scheduler))
	}

	scfg := HardenedConfig(seed)
	scfg.Faults = plan
	rt := spark.NewRuntime(eng, clu, sched, scfg)
	res := rt.Run(app)

	rec.Duration = res.Duration
	rec.Completed = res.Aborted == nil
	if res.Aborted != nil {
		rec.Aborted = res.Aborted.Error()
	}
	rec.Launches = res.Launches
	rec.SpecCopies = res.SpecCopies
	rec.OOMs = res.OOMs
	rec.Crashes = res.Crashes
	rec.FailStops = res.FailStops
	rec.TaskFlakes = res.TaskFlakes
	rec.ExecutorsLost = res.ExecutorsLost
	rec.ExecutorsRejoined = res.ExecutorsRejoined
	rec.FetchFailures = res.FetchFailures
	rec.Resubmissions = res.Resubmissions
	rec.NodesBlacklisted = res.NodesBlacklisted
	rec.Fingerprint = Fingerprint(res)
	rec.Violations = CheckInvariants(res, rt)
	return rec
}

// HardenedConfig is the framework configuration the soak runs under:
// bounded retries (so doomed tasks abort instead of spinning), the node
// blacklist on, a speculation cap, a tight heartbeat so loss windows are
// observed, and a low sim-time ceiling so a livelock fails fast (as a
// recovered panic) instead of hanging the sweep. rupam-sim's -chaos-seed
// mode reuses it so CLI fault runs abort structurally too.
func HardenedConfig(seed uint64) spark.Config {
	return spark.Config{
		Seed:                   seed*31 + 7,
		TaskMaxFailures:        8,
		Blacklist:              spark.BlacklistConfig{Enabled: true},
		SpeculationMaxPerStage: 4,
		HeartbeatInterval:      0.5,
		HeartbeatTimeout:       4,
		MaxSimTime:             7200,
		SampleInterval:         -1,
	}
}

// Fingerprint hashes a run's observable outcome: app duration, job ends,
// every attempt's executor, timeline and terminal flags, and the
// fault-tolerance counters. Identical seeds must produce identical
// fingerprints — the bit-identity invariant.
func Fingerprint(res *spark.Result) string {
	h := fnv.New64a()
	f64 := func(x float64) { binary.Write(h, binary.LittleEndian, math.Float64bits(x)) }
	i64 := func(x int) { binary.Write(h, binary.LittleEndian, int64(x)) }
	f64(res.Duration)
	i64(len(res.JobEnds))
	for _, je := range res.JobEnds {
		f64(je)
	}
	for _, tk := range res.App.AllTasks() {
		i64(tk.ID)
		i64(int(tk.State))
		i64(len(tk.Attempts))
		for _, a := range tk.Attempts {
			io.WriteString(h, a.Executor)
			f64(a.Launch)
			f64(a.Start)
			f64(a.End)
			flags := 0
			if a.OOM {
				flags |= 1
			}
			if a.Killed {
				flags |= 2
			}
			if a.FetchFailed {
				flags |= 4
			}
			if a.Flaked {
				flags |= 8
			}
			if a.UsedGPU {
				flags |= 16
			}
			i64(flags)
		}
	}
	for _, c := range []int{
		res.Launches, res.SpecCopies, res.OOMs, res.Crashes, res.FailStops,
		res.TaskFlakes, res.ExecutorsLost, res.ExecutorsRejoined,
		res.FetchFailures, res.Resubmissions, res.NodesBlacklisted,
	} {
		i64(c)
	}
	if res.Aborted != nil {
		io.WriteString(h, res.Aborted.Error())
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// WriteJSON writes the report as a deterministic, indented JSON artifact.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Print summarizes the sweep, one line per run plus a verdict.
func (r *Report) Print(w io.Writer) {
	fmt.Fprintf(w, "chaos soak: %s, %d seeds\n", r.Workload, len(r.Seeds))
	fmt.Fprintf(w, "%-6s %6s %6s %9s %5s %6s %5s %5s %6s %s\n",
		"sched", "seed", "events", "dur(s)", "spec", "flakes", "lost", "resub", "abort", "fingerprint")
	for _, rec := range r.Runs {
		abort := "-"
		if rec.Aborted != "" {
			abort = "yes"
		}
		fmt.Fprintf(w, "%-6s %6d %6d %9.1f %5d %6d %5d %5d %6s %s\n",
			rec.Scheduler, rec.Seed, rec.Events, rec.Duration, rec.SpecCopies,
			rec.TaskFlakes, rec.ExecutorsLost, rec.Resubmissions, abort, rec.Fingerprint)
		for _, v := range rec.Violations {
			fmt.Fprintf(w, "    VIOLATION: %s\n", v)
		}
	}
	if r.Violations == 0 {
		fmt.Fprintf(w, "0 invariant violations across %d runs\n", len(r.Runs))
	} else {
		fmt.Fprintf(w, "%d INVARIANT VIOLATIONS across %d runs\n", r.Violations, len(r.Runs))
	}
}
