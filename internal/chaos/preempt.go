package chaos

import (
	"encoding/json"
	"fmt"
	"io"

	"rupam/internal/cluster"
	"rupam/internal/faults"
	"rupam/internal/simx"
	"rupam/internal/spark"
	"rupam/internal/tenant"
)

// Preemption soak: the elastic-substrate counterpart of TenancySoak. Each
// seed runs a multi-application arrival stream on the elastic market with
// a price-correlated spot-reclamation plan over the spot nodes, then
// asserts the graceful-drain protocol end to end: every notice resolves
// into a drain or a kill, nothing launches onto a fenced instance inside
// its doom window, relocated shuffle outputs survive the kill, announced
// losses charge neither the retry budget nor the blacklist, the market
// conserves instances and leases, and re-runs are bit-identical.

// PreemptConfig parameterizes a preemption soak sweep. The zero value
// (plus Seeds) is usable: four arrivals, both schedulers, PreemptGen
// reclamations over DefaultSpotNodes, every seed run twice.
type PreemptConfig struct {
	// Schedulers to drive; default both ("spark", "rupam").
	Schedulers []string
	// Seeds are the sweep's plan seeds.
	Seeds []uint64
	// Apps is the arrival count per run (default 4).
	Apps int
	// MeanGap is the mean inter-arrival gap in seconds (default 20).
	MeanGap float64
	// SpotNodes are the spot-billed (reclaimable) instances; default
	// DefaultSpotNodes. The driver node is never a sensible member.
	SpotNodes []string
	// Gen parameterizes faults.SpotSchedule; zero value takes PreemptGen.
	Gen faults.GenConfig
	// IgnoreNotices runs the notice-blind baseline substrate instead of the
	// graceful drain (the drain-protocol record checks are then skipped —
	// there is no protocol to audit, only crash-style recovery).
	IgnoreNotices bool
	// SkipVerify disables the second (bit-identity) run per seed.
	SkipVerify bool
}

func (c PreemptConfig) withDefaults() PreemptConfig {
	if len(c.Schedulers) == 0 {
		c.Schedulers = []string{"spark", "rupam"}
	}
	if c.Apps == 0 {
		c.Apps = 4
	}
	if c.MeanGap == 0 {
		c.MeanGap = 20
	}
	if len(c.SpotNodes) == 0 {
		c.SpotNodes = DefaultSpotNodes()
	}
	if c.Gen == (faults.GenConfig{}) {
		c.Gen = PreemptGen()
	}
	return c
}

// PreemptGen is the soak's reclamation horizon and grace bounds; the
// per-node rates come from the market hazards, not from here.
func PreemptGen() faults.GenConfig {
	return faults.GenConfig{Horizon: 150, MinGrace: 6, MaxGrace: 20}
}

// DefaultSpotNodes is the soak's spot pool: half of each Hydra class,
// never thor1 (the driver node — reclaiming it would model losing the
// cluster manager itself, which is the recovery soak's job).
func DefaultSpotNodes() []string {
	return []string{"thor4", "thor5", "thor6", "hulk3", "hulk4", "stack2"}
}

// SpotHazards maps each spot node to its class's market preemption hazard
// (expected reclamations/hour), resolving classes through the reference
// Hydra cluster. Input for faults.SpotSchedule.
func SpotHazards(market *cluster.Market, spotNodes []string) map[string]float64 {
	if market == nil {
		market = cluster.DefaultMarket()
	}
	clu := cluster.New(simx.NewEngine())
	cluster.NewHydra(clu)
	hz := make(map[string]float64, len(spotNodes))
	for _, name := range spotNodes {
		if n := clu.Node(name); n != nil {
			hz[name] = market.Hazard(n.Spec.Class)
		}
	}
	return hz
}

// PreemptRunRecord is one (scheduler, seed) outcome in the sweep.
type PreemptRunRecord struct {
	Scheduler string  `json:"scheduler"`
	Seed      uint64  `json:"seed"`
	Events    int     `json:"spot_events"`
	Makespan  float64 `json:"makespan_s"`

	Completed int `json:"completed"`
	Aborted   int `json:"aborted"`

	Notices         int     `json:"notices"`
	Kills           int     `json:"kills"`
	DrainsCompleted int     `json:"drains_completed"`
	BlocksMoved     int     `json:"blocks_moved"`
	BytesMoved      int64   `json:"bytes_moved"`
	LossesUncharged int     `json:"losses_uncharged"`
	CloudCost       float64 `json:"cloud_cost"`
	Acquisitions    int     `json:"acquisitions"`

	Fingerprint string   `json:"fingerprint"`
	Violations  []string `json:"violations,omitempty"`
}

// PreemptReport is a full preemption sweep's outcome.
type PreemptReport struct {
	Seeds      []uint64           `json:"seeds"`
	SpotNodes  []string           `json:"spot_nodes"`
	Runs       []PreemptRunRecord `json:"runs"`
	Violations int                `json:"violations"`
}

// PreemptionSoak sweeps every (scheduler, seed) pair. Panicking runs are
// recorded as violations, never propagated.
func PreemptionSoak(cfg PreemptConfig) *PreemptReport {
	cfg = cfg.withDefaults()
	rep := &PreemptReport{Seeds: cfg.Seeds, SpotNodes: cfg.SpotNodes}
	for _, seed := range cfg.Seeds {
		for _, sched := range cfg.Schedulers {
			rec := runPreemptSeed(cfg, sched, seed)
			if !cfg.SkipVerify && rec.Fingerprint != "" {
				again := runPreemptSeed(cfg, sched, seed)
				if again.Fingerprint != rec.Fingerprint {
					rec.Violations = append(rec.Violations, fmt.Sprintf(
						"non-deterministic: fingerprint %s on re-run, %s first",
						again.Fingerprint, rec.Fingerprint))
				}
			}
			rep.Violations += len(rec.Violations)
			rep.Runs = append(rep.Runs, rec)
		}
	}
	return rep
}

// runPreemptSeed executes one elastic multi-tenant run under one scheduler
// and checks the full battery.
func runPreemptSeed(cfg PreemptConfig, scheduler string, seed uint64) (rec PreemptRunRecord) {
	rec = PreemptRunRecord{Scheduler: scheduler, Seed: seed}
	defer func() {
		if r := recover(); r != nil {
			rec.Violations = append(rec.Violations, fmt.Sprintf("run panicked: %v", r))
		}
	}()

	plan := faults.SpotSchedule(seed, cfg.SpotNodes, SpotHazards(nil, cfg.SpotNodes), cfg.Gen)
	rec.Events = len(plan.Events)

	m := tenant.NewManager(tenant.Config{
		Scheduler: scheduler,
		Seed:      seed,
		Arrivals:  tenant.ArrivalConfig{Count: cfg.Apps, MeanGap: cfg.MeanGap},
		Faults:    plan,
		Spark:     tenancyHardened(),
		Elastic: tenant.ElasticConfig{
			Enabled:       true,
			SpotNodes:     cfg.SpotNodes,
			IgnoreNotices: cfg.IgnoreNotices,
		},
	})
	rep := m.Run()

	rec.Makespan = rep.Makespan
	rec.Completed = rep.Completed
	rec.Aborted = rep.Aborted
	rec.CloudCost = rep.CloudCost
	rec.Acquisitions = rep.Acquisitions
	rec.Notices, rec.Kills = m.SpotEvents()
	rec.Fingerprint = rep.Fingerprint
	rec.Violations = append(rec.Violations, rep.Violations...)

	// The provider kills everything it warned about: with a spot-only plan
	// nothing else can fail-stop a node mid-grace, so the counts match.
	if rec.Notices != rec.Kills {
		rec.Violations = append(rec.Violations, fmt.Sprintf(
			"manager heard %d notices but observed %d kills", rec.Notices, rec.Kills))
	}

	for _, run := range m.AppRuns() {
		res, rt := run.Result, run.Runtime
		rec.DrainsCompleted += res.DrainsCompleted
		rec.BlocksMoved += res.DrainBlocksMoved
		rec.BytesMoved += res.DrainBytesMoved
		rec.LossesUncharged += res.PreemptLossesUncharged

		for _, v := range CheckAppInvariants(res, rt) {
			rec.Violations = append(rec.Violations, fmt.Sprintf("%s: %s", run.Record.Label, v))
		}
		if !cfg.IgnoreNotices {
			for _, v := range CheckPreemptionInvariants(res, rt) {
				rec.Violations = append(rec.Violations, fmt.Sprintf("%s: %s", run.Record.Label, v))
			}
		}
	}
	return rec
}

// CheckPreemptionInvariants is the graceful-drain battery over one
// finished application run:
//
//   - every notice→kill episode resolved ("drained" or "killed" — no
//     episode left dangling);
//   - nothing launched onto a doomed node past its fence point (the kill
//     deadline minus the safety margin of predicted task time) and before
//     re-acquisition — the window where only pre-fence work may run;
//   - every output relocated during a grace window survived the kill off
//     the dead node (the runtime's own drain audit);
//   - announced losses were exempt from failure accounting: the uncharged
//     counter covers every attempt the kills took down, and with no other
//     failure source active the blacklist never fired.
func CheckPreemptionInvariants(res *spark.Result, rt *spark.Runtime) []string {
	var v []string
	recs := rt.PreemptionRecords()

	attemptsKilled := 0
	for _, rec := range recs {
		if rec.Resolution == "" {
			v = append(v, fmt.Sprintf(
				"preemption of %s noticed at %.2f never resolved", rec.Node, rec.NoticeAt))
		}
		attemptsKilled += rec.AttemptsKilled

		for _, tk := range res.App.AllTasks() {
			for _, a := range tk.Attempts {
				if a.Executor != rec.Node {
					continue
				}
				if a.Launch > rec.FencedFrom && (rec.ClearedAt == 0 || a.Launch < rec.ClearedAt) {
					v = append(v, fmt.Sprintf(
						"%s: attempt launched on %s at %.2f past fence point [%.2f, %s)",
						tk, rec.Node, a.Launch, rec.FencedFrom, clearedLabel(rec.ClearedAt)))
				}
			}
		}
	}

	v = append(v, rt.PreemptViolations()...)

	if res.PreemptLossesUncharged < attemptsKilled {
		v = append(v, fmt.Sprintf(
			"kills took down %d attempts but only %d losses went uncharged",
			attemptsKilled, res.PreemptLossesUncharged))
	}
	// Spot kills are this battery's only induced fault; absent workload-
	// inherent failures (OOMs, fetch failures) any blacklist activation
	// means an announced loss was charged.
	if res.NodesBlacklisted > 0 && res.OOMs == 0 && res.FetchFailures == 0 {
		v = append(v, fmt.Sprintf(
			"%d blacklist activations with no failure source but spot kills",
			res.NodesBlacklisted))
	}
	return v
}

func clearedLabel(at float64) string {
	if at == 0 {
		return "run-end"
	}
	return fmt.Sprintf("%.2f", at)
}

// WriteJSON writes the report as a deterministic, indented JSON artifact.
func (r *PreemptReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Print summarizes the sweep, one line per run plus a verdict.
func (r *PreemptReport) Print(w io.Writer) {
	fmt.Fprintf(w, "preemption soak: %d seeds, %d spot nodes\n", len(r.Seeds), len(r.SpotNodes))
	fmt.Fprintf(w, "%-6s %6s %6s %10s %4s %4s %6s %6s %7s %8s %s\n",
		"sched", "seed", "events", "makespan", "done", "abrt", "kills", "drains", "moved", "cost($)", "fingerprint")
	for _, rec := range r.Runs {
		fmt.Fprintf(w, "%-6s %6d %6d %10.1f %4d %4d %6d %6d %7d %8.4f %s\n",
			rec.Scheduler, rec.Seed, rec.Events, rec.Makespan, rec.Completed,
			rec.Aborted, rec.Kills, rec.DrainsCompleted, rec.BlocksMoved,
			rec.CloudCost, rec.Fingerprint)
		for _, v := range rec.Violations {
			fmt.Fprintf(w, "    VIOLATION: %s\n", v)
		}
	}
	if r.Violations == 0 {
		fmt.Fprintf(w, "0 invariant violations across %d runs\n", len(r.Runs))
	} else {
		fmt.Fprintf(w, "%d INVARIANT VIOLATIONS across %d runs\n", r.Violations, len(r.Runs))
	}
}
