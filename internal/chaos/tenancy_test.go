package chaos

import (
	"bytes"
	"testing"

	"rupam/internal/faults"
)

// tenancySeeds mirrors soakSeeds: small under -short, wider otherwise.
func tenancySeeds(short bool) []uint64 {
	n := 6
	if short {
		n = 2
	}
	seeds := make([]uint64, n)
	for i := range seeds {
		seeds[i] = uint64(i + 1)
	}
	return seeds
}

// TestTenancySoak is the cross-application isolation battery: random
// fault plans (including a routed driver crash) against whole arrival
// streams under both schedulers; the tenant manager's invariants and each
// application's own accounting must hold, and every seed must reproduce
// bit-identically.
func TestTenancySoak(t *testing.T) {
	rep := TenancySoak(TenancyConfig{Seeds: tenancySeeds(testing.Short())})
	for _, rec := range rep.Runs {
		for _, v := range rec.Violations {
			t.Errorf("scheduler=%s seed=%d: %s", rec.Scheduler, rec.Seed, v)
		}
		if rec.Arrived != rec.Admitted+rec.Rejected {
			t.Errorf("scheduler=%s seed=%d: admission accounting %d != %d + %d",
				rec.Scheduler, rec.Seed, rec.Arrived, rec.Admitted, rec.Rejected)
		}
	}
	if t.Failed() {
		var buf bytes.Buffer
		rep.Print(&buf)
		t.Logf("full report:\n%s", buf.String())
	}
}

// TestTenancySoakRoutesDriverCrash guards the crash-routing path: with a
// plan that certainly contains driver crashes, some run in the sweep must
// actually crash and recover a tenant driver (visible as a completed run —
// recovery worked — under a plan whose events include DriverCrash).
func TestTenancySoakRoutesDriverCrash(t *testing.T) {
	gen := TenancyGen()
	gen.DriverCrashes = 2
	rep := TenancySoak(TenancyConfig{
		Seeds:      []uint64{2},
		Schedulers: []string{"spark"},
		Gen:        gen,
		SkipVerify: true,
	})
	if rep.Violations != 0 {
		for _, rec := range rep.Runs {
			for _, v := range rec.Violations {
				t.Errorf("%s", v)
			}
		}
	}
	plan := faults.RandomSchedule(2, hydraNodeNames(), gen)
	if !plan.HasKind(faults.DriverCrash) {
		t.Fatal("generator produced no driver crash despite DriverCrashes=2")
	}
	if rep.Runs[0].Completed == 0 {
		t.Fatal("no application survived the driver-crash plan")
	}
}

// TestTenancyReportDeterministic requires the whole JSON artifact to be
// byte-identical across invocations.
func TestTenancyReportDeterministic(t *testing.T) {
	cfg := TenancyConfig{Seeds: []uint64{4}, Schedulers: []string{"rupam"}, SkipVerify: true}
	var a, b bytes.Buffer
	if err := TenancySoak(cfg).WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := TenancySoak(cfg).WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("tenancy artifact differs between identical invocations:\n%s\n---\n%s",
			a.String(), b.String())
	}
}
