// Package pq provides a small generic binary heap used across the
// simulator: the event queue in simx, flow bookkeeping in netsim, and the
// per-resource priority queues in the RUPAM dispatcher.
//
// The zero Heap is not usable; construct one with New. The heap is not
// safe for concurrent use: the simulation is single-threaded by design so
// that runs are deterministic.
package pq

// Heap is a binary min-heap ordered by the less function supplied to New.
type Heap[T any] struct {
	items []T
	less  func(a, b T) bool
}

// New returns an empty heap ordered by less (a "min" heap: Pop returns the
// smallest element under less).
func New[T any](less func(a, b T) bool) *Heap[T] {
	return &Heap[T]{less: less}
}

// Len reports the number of elements in the heap.
func (h *Heap[T]) Len() int { return len(h.items) }

// Push adds x to the heap.
func (h *Heap[T]) Push(x T) {
	h.items = append(h.items, x)
	h.up(len(h.items) - 1)
}

// Peek returns the minimum element without removing it. It panics if the
// heap is empty; guard with Len.
func (h *Heap[T]) Peek() T {
	return h.items[0]
}

// Pop removes and returns the minimum element. It panics if the heap is
// empty; guard with Len.
func (h *Heap[T]) Pop() T {
	top := h.items[0]
	n := len(h.items) - 1
	h.items[0] = h.items[n]
	var zero T
	h.items[n] = zero // release reference for GC
	h.items = h.items[:n]
	if n > 0 {
		h.down(0)
	}
	return top
}

// Clear removes all elements, retaining the underlying storage.
func (h *Heap[T]) Clear() {
	var zero T
	for i := range h.items {
		h.items[i] = zero
	}
	h.items = h.items[:0]
}

// Items returns the heap's backing slice in heap order (not sorted order).
// Callers must not mutate element priority without re-heapifying.
func (h *Heap[T]) Items() []T { return h.items }

func (h *Heap[T]) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(h.items[i], h.items[parent]) {
			return
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		i = parent
	}
}

func (h *Heap[T]) down(i int) {
	n := len(h.items)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && h.less(h.items[l], h.items[smallest]) {
			smallest = l
		}
		if r < n && h.less(h.items[r], h.items[smallest]) {
			smallest = r
		}
		if smallest == i {
			return
		}
		h.items[i], h.items[smallest] = h.items[smallest], h.items[i]
		i = smallest
	}
}
