package pq

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmptyHeap(t *testing.T) {
	h := New(func(a, b int) bool { return a < b })
	if h.Len() != 0 {
		t.Fatalf("new heap has Len %d", h.Len())
	}
}

func TestPushPopOrdered(t *testing.T) {
	h := New(func(a, b int) bool { return a < b })
	for _, v := range []int{5, 3, 8, 1, 9, 2, 7} {
		h.Push(v)
	}
	want := []int{1, 2, 3, 5, 7, 8, 9}
	for i, w := range want {
		if got := h.Pop(); got != w {
			t.Fatalf("pop %d: got %d, want %d", i, got, w)
		}
	}
	if h.Len() != 0 {
		t.Fatalf("heap not empty after draining: %d", h.Len())
	}
}

func TestPeekDoesNotRemove(t *testing.T) {
	h := New(func(a, b int) bool { return a < b })
	h.Push(4)
	h.Push(2)
	if h.Peek() != 2 {
		t.Fatalf("peek = %d, want 2", h.Peek())
	}
	if h.Len() != 2 {
		t.Fatalf("peek removed an element")
	}
}

func TestDuplicates(t *testing.T) {
	h := New(func(a, b int) bool { return a < b })
	for i := 0; i < 5; i++ {
		h.Push(7)
	}
	for i := 0; i < 5; i++ {
		if got := h.Pop(); got != 7 {
			t.Fatalf("pop = %d, want 7", got)
		}
	}
}

func TestMaxHeapOrdering(t *testing.T) {
	h := New(func(a, b int) bool { return a > b })
	for _, v := range []int{1, 9, 5} {
		h.Push(v)
	}
	if got := h.Pop(); got != 9 {
		t.Fatalf("max-heap pop = %d, want 9", got)
	}
}

func TestClear(t *testing.T) {
	h := New(func(a, b int) bool { return a < b })
	h.Push(1)
	h.Push(2)
	h.Clear()
	if h.Len() != 0 {
		t.Fatalf("Clear left %d elements", h.Len())
	}
	h.Push(3)
	if h.Pop() != 3 {
		t.Fatal("heap unusable after Clear")
	}
}

func TestStructElements(t *testing.T) {
	type ev struct {
		t   float64
		seq int
	}
	h := New(func(a, b ev) bool {
		if a.t != b.t {
			return a.t < b.t
		}
		return a.seq < b.seq
	})
	h.Push(ev{1.0, 2})
	h.Push(ev{1.0, 1})
	h.Push(ev{0.5, 3})
	if got := h.Pop(); got != (ev{0.5, 3}) {
		t.Fatalf("pop = %+v", got)
	}
	if got := h.Pop(); got != (ev{1.0, 1}) {
		t.Fatalf("tie-break pop = %+v", got)
	}
}

// Property: draining the heap yields the input in sorted order.
func TestQuickSortedDrain(t *testing.T) {
	f := func(xs []int) bool {
		h := New(func(a, b int) bool { return a < b })
		for _, x := range xs {
			h.Push(x)
		}
		var out []int
		for h.Len() > 0 {
			out = append(out, h.Pop())
		}
		return sort.IntsAreSorted(out) && len(out) == len(xs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: interleaved pushes and pops still always pop the minimum of
// the current contents.
func TestQuickInterleaved(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	h := New(func(a, b int) bool { return a < b })
	var mirror []int
	for i := 0; i < 5000; i++ {
		if len(mirror) == 0 || rng.Intn(3) != 0 {
			v := rng.Intn(1000)
			h.Push(v)
			mirror = append(mirror, v)
			continue
		}
		sort.Ints(mirror)
		want := mirror[0]
		mirror = mirror[1:]
		if got := h.Pop(); got != want {
			t.Fatalf("step %d: pop = %d, want %d", i, got, want)
		}
	}
}

func BenchmarkPushPop(b *testing.B) {
	h := New(func(a, b int) bool { return a < b })
	for i := 0; i < b.N; i++ {
		h.Push(i ^ 0x2545)
		if h.Len() > 1024 {
			h.Pop()
		}
	}
}
