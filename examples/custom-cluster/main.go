// Custom cluster: the public API end to end on a user-defined topology
// and a hand-built workload — define heterogeneous nodes, place a
// dataset, express a custom application with the RDD API, and run it
// under RUPAM.
//
//	go run ./examples/custom-cluster
package main

import (
	"fmt"

	"rupam/internal/cluster"
	"rupam/internal/core"
	"rupam/internal/executor"
	"rupam/internal/hdfs"
	"rupam/internal/rdd"
	"rupam/internal/simx"
	"rupam/internal/spark"
)

func main() {
	executor.ResetRunSeq()
	eng := simx.NewEngine()
	clu := cluster.New(eng)

	// A small shop: two fast compute boxes, one storage-heavy box with an
	// SSD, and one GPU box.
	for i := 1; i <= 2; i++ {
		clu.AddNode(cluster.NodeSpec{
			Name: fmt.Sprintf("compute%d", i), Class: "compute",
			Cores: 16, FreqGHz: 3.0, MemBytes: 32 * cluster.GB,
			NetBandwidth: cluster.GbE(10),
			DiskReadBW:   cluster.MBps(180), DiskWriteBW: cluster.MBps(160),
		})
	}
	clu.AddNode(cluster.NodeSpec{
		Name: "storage1", Class: "storage",
		Cores: 8, FreqGHz: 2.0, MemBytes: 64 * cluster.GB,
		NetBandwidth: cluster.GbE(10), SSD: true,
		DiskReadBW: cluster.MBps(900), DiskWriteBW: cluster.MBps(800),
	})
	clu.AddNode(cluster.NodeSpec{
		Name: "gpu1", Class: "accel",
		Cores: 8, FreqGHz: 2.2, MemBytes: 32 * cluster.GB,
		NetBandwidth: cluster.GbE(10),
		DiskReadBW:   cluster.MBps(200), DiskWriteBW: cluster.MBps(180),
		GPUs: 2, GPURateGHz: 50,
	})

	// 8 GB of event logs, replicated twice.
	store := hdfs.NewStore(clu.NodeNames(), 2, 1)
	logs := store.CreateSkewed("events", 8*cluster.GB, 64, 0.3)

	// A custom pipeline: parse (cached), featurize on the GPU, sessionize
	// with a shuffle, run three scoring iterations.
	ctx := rdd.NewContext("custom-analytics", store, 1)
	parsed := ctx.Read(logs).Map("parse", rdd.Profile{
		CPUPerByte: 20e-9, MemPerByte: 1.5, OutRatio: 0.8,
	}).Cache()

	sessions := parsed.Shuffle("sessionize", rdd.Profile{
		CPUPerByte: 15e-9, MemPerByte: 2, OutRatio: 0.5, Skew: 0.3,
	}, 32)
	sessions.Count("prepare")

	for i := 1; i <= 3; i++ {
		scored := parsed.Map("score", rdd.Profile{
			CPUPerByte: 30e-9, GPUPerByte: 120e-9, MemPerByte: 1.2, OutRatio: 1e-4,
		})
		scored.Shuffle("aggregate", rdd.Profile{CPUPerByte: 10e-9}, 8).
			Count(fmt.Sprintf("score-round-%d", i))
	}

	rt := spark.NewRuntime(eng, clu, core.New(core.Config{}), spark.Config{Seed: 1})
	res := rt.Run(ctx.App())

	fmt.Printf("application %q finished in %.1fs (%d tasks, %d jobs)\n",
		res.App.Name, res.Duration, res.App.NumTasks(), len(res.App.Jobs))
	for i, je := range res.JobEnds {
		fmt.Printf("  job %d done at %6.1fs\n", i+1, je)
	}
	gpu := 0
	for _, t := range res.App.AllTasks() {
		if m := t.SuccessMetrics(); m != nil && m.UsedGPU {
			gpu++
		}
	}
	fmt.Printf("tasks that ran on the GPUs: %d\n", gpu)
}
