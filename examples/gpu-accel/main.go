// GPU acceleration: the paper's two BLAS workloads side by side. KMeans
// iterates, so RUPAM learns which stages are GPU stages, routes them to
// the accelerator nodes and races CPU-stranded copies onto idle GPUs
// (§III-C3); Gramian Matrix is single-pass, so there is nothing to learn
// and both schedulers perform alike — the paper's 2.49× vs 1.4% contrast.
//
//	go run ./examples/gpu-accel
package main

import (
	"fmt"

	"rupam/internal/experiments"
	"rupam/internal/spark"
)

func countGPU(r *spark.Result) int {
	n := 0
	for _, t := range r.App.AllTasks() {
		if m := t.SuccessMetrics(); m != nil && m.UsedGPU {
			n++
		}
	}
	return n
}

func main() {
	for _, workload := range []string{"KMeans", "GM"} {
		sparkRes := experiments.Run(experiments.RunSpec{
			Workload: workload, Scheduler: experiments.SchedSpark, Seed: 9,
		})
		rupamRes := experiments.Run(experiments.RunSpec{
			Workload: workload, Scheduler: experiments.SchedRUPAM, Seed: 9,
		})

		fmt.Printf("== %s ==\n", workload)
		fmt.Printf("  spark: %7.1fs   rupam: %7.1fs   speedup %.2fx\n",
			sparkRes.Duration, rupamRes.Duration, sparkRes.Duration/rupamRes.Duration)
		fmt.Printf("  GPU-executed tasks: spark=%d rupam=%d (of %d)\n",
			countGPU(sparkRes), countGPU(rupamRes), len(rupamRes.App.AllTasks()))
		fmt.Printf("  speculative copies (incl. GPU/CPU races): spark=%d rupam=%d\n\n",
			sparkRes.SpecCopies, rupamRes.SpecCopies)
	}
}
