// Iterative ML: reproduce the paper's Figure 6 observation that RUPAM's
// advantage grows with the number of workload iterations — the
// task-characteristics database converges, tasks migrate to (and lock
// onto) their best nodes, and the cache follows them.
//
//	go run ./examples/iterative-ml
package main

import (
	"fmt"

	"rupam/internal/experiments"
	"rupam/internal/workloads"
)

func main() {
	fmt.Println("Logistic Regression (6 GB), speedup of RUPAM over default Spark:")
	fmt.Printf("%-12s %10s %10s %9s\n", "iterations", "spark(s)", "rupam(s)", "speedup")
	for _, iters := range []int{1, 2, 4, 8, 16} {
		p := workloads.Params{Iterations: iters}
		spark := experiments.Run(experiments.RunSpec{
			Workload: "LR", Scheduler: experiments.SchedSpark, Params: p, Seed: 3,
		})
		rupam := experiments.Run(experiments.RunSpec{
			Workload: "LR", Scheduler: experiments.SchedRUPAM, Params: p, Seed: 3,
		})
		fmt.Printf("%-12d %10.1f %10.1f %8.2fx\n",
			iters, spark.Duration, rupam.Duration, spark.Duration/rupam.Duration)
	}
	fmt.Println("\nThe speedup climbs because each iteration refines DB_taskchar:")
	fmt.Println("iteration 1 schedules blind; by iteration 3 tasks are locked to the")
	fmt.Println("fast-CPU nodes and read their cached partitions PROCESS_LOCAL there.")
}
