// Quickstart: build the paper's 12-node heterogeneous Hydra cluster, run
// PageRank under the default Spark scheduler and under RUPAM, and compare.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"rupam/internal/cluster"
	"rupam/internal/core"
	"rupam/internal/executor"
	"rupam/internal/hdfs"
	"rupam/internal/metrics"
	"rupam/internal/simx"
	"rupam/internal/spark"
	"rupam/internal/task"
	"rupam/internal/workloads"
)

// runOnce wires the full stack by hand — engine, cluster, block store,
// workload, scheduler, runtime — the same steps the experiments package
// automates.
func runOnce(schedName string) *spark.Result {
	// Fresh simulation world.
	executor.ResetRunSeq()
	eng := simx.NewEngine()

	// The heterogeneous cluster of Table II.
	clu := cluster.New(eng)
	cluster.NewHydra(clu)

	// A replicated block store over the cluster's nodes.
	store := hdfs.NewStore(clu.NodeNames(), 2, 42)

	// The PageRank workload from the SparkBench-equivalent suite.
	app := workloads.Build("PR", store, workloads.Params{Seed: 7})

	// Pick the task scheduler under test.
	var sched spark.Scheduler
	if schedName == "rupam" {
		sched = core.New(core.Config{})
	} else {
		sched = spark.NewDefaultScheduler()
	}

	// Run to completion on virtual time.
	rt := spark.NewRuntime(eng, clu, sched, spark.Config{Seed: 7})
	return rt.Run(app)
}

func main() {
	fmt.Println("PageRank on the 12-node Hydra cluster:")
	var results []*spark.Result
	for _, sched := range []string{"spark", "rupam"} {
		res := runOnce(sched)
		results = append(results, res)
		lc := metrics.AppLocality(res.App)
		fmt.Printf("  %-6s %7.1fs  (OOMs=%d crashes=%d, locality P/N/A=%d/%d/%d)\n",
			res.Scheduler, res.Duration, res.OOMs, res.Crashes,
			lc.Process, lc.Node, lc.Any)
	}
	fmt.Printf("speedup: %.2fx\n", results[0].Duration/results[1].Duration)

	// Peek at a few task records to see what the framework captured.
	fmt.Println("\nsample task metrics (RUPAM run):")
	shown := 0
	for _, t := range results[1].App.AllTasks() {
		m := t.SuccessMetrics()
		if m == nil || t.Kind != task.ShuffleMap || shown >= 5 {
			continue
		}
		shown++
		fmt.Printf("  %-34s on %-7s compute=%5.2fs gc=%5.2fs shuffle=%5.2fs peakMem=%4dMB\n",
			t.String(), m.Executor, m.ComputeTime, m.GCTime,
			m.ShuffleReadTime+m.ShuffleWriteTime, m.PeakMemory/(1<<20))
	}
}
