package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestStreamingExperimentCLI drives the built binary end to end: the
// streaming experiment must validate its seed count, pass its placement
// gate on the default sweep, and emit the CSV and JSON artifacts CI
// uploads.
func TestStreamingExperimentCLI(t *testing.T) {
	dir := t.TempDir()
	bin := filepath.Join(dir, "rupam-bench")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	out, err := exec.Command(bin, "-experiment", "streaming", "-streaming-seeds", "-1").CombinedOutput()
	if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 2 {
		t.Fatalf("negative -streaming-seeds: want exit 2, got %v\n%s", err, out)
	}

	csvDir := filepath.Join(dir, "csv")
	jsonPath := filepath.Join(dir, "streaming.json")
	out, err = exec.Command(bin, "-experiment", "streaming",
		"-csv", csvDir, "-json", jsonPath).CombinedOutput()
	if err != nil {
		t.Fatalf("streaming experiment failed: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "placement gate holds") {
		t.Fatalf("gate verdict missing from output:\n%s", out)
	}

	csv, err := os.ReadFile(filepath.Join(csvDir, "streaming_throughput.csv"))
	if err != nil {
		t.Fatalf("CSV artifact not written: %v", err)
	}
	if !strings.HasPrefix(string(csv), "placer,seed,throughput_hz") {
		t.Fatalf("CSV header wrong:\n%s", csv[:120])
	}
	j, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatalf("JSON artifact not written: %v", err)
	}
	// A clean report counts zero violations and omits gate_violations.
	if !strings.Contains(string(j), "\"violations\": 0") ||
		strings.Contains(string(j), "\"gate_violations\"") {
		t.Fatalf("JSON artifact not clean:\n%s", j)
	}
}
