// Command rupam-bench regenerates every table and figure of the paper's
// evaluation (§IV) on the simulated Hydra cluster and prints the same
// rows/series the paper reports.
//
// Usage:
//
//	rupam-bench [-experiment all|fig2|fig3|tab2|tab4|fig5|fig6|tab5|fig7|fig8|fig9|ablations|faults|chaos|recovery|tracesanity|tenancy|preempt|elastic|federation|streaming]
//	            [-runs N] [-seed N] [-csv DIR] [-chaos-seeds N] [-json FILE]
//	            [-tenancy-seeds N] [-tenancy-apps N] [-elastic-seeds N]
//	            [-federation-seeds N] [-streaming-seeds N]
//
// fig5 runs every workload under both schedulers -runs times (default 5,
// as in the paper); everything else uses a single seeded run. With -csv,
// the raw series behind Figures 2, 3 and 9 are also written as CSV files
// into DIR for replotting. The faults experiment (PageRank under a seeded
// fault plan, both schedulers), the chaos experiment (a -chaos-seeds
// wide soak sweep with invariant checking; -json writes the full report),
// the recovery experiment (a -chaos-seeds wide driver-crash sweep checking
// each crashed-and-recovered run against its unfailed reference)
// and the tracesanity experiment (traced runs under both schedulers with
// trace-format, determinism, decision-audit and critical-path invariant
// checks) must be requested explicitly — none is part of "all", which
// stays fault-free and byte-reproducible. The tenancy experiment
// (-tenancy-seeds open-loop arrival streams per scheduler on the shared
// cluster, reporting per-pool throughput, latency percentiles and
// slowdown versus isolated runs; -csv writes tenancy_pools.csv, -json the
// full report, and any invariant violation exits nonzero) is likewise
// explicit-only. So are the two elastic-substrate sweeps: the preempt
// experiment (a -chaos-seeds wide preemption soak on the elastic instance
// market, auditing the graceful-drain protocol end to end) and the elastic
// experiment (the cost-vs-makespan Pareto sweep over acquisition policies
// under identical reclamation plans; -csv writes elastic_pareto.csv, -json
// the full report, and any frontier or invariant violation exits nonzero).
// The federation experiment runs the two-phase placement protocol's
// acceptance battery and a -federation-seeds wide soak (multi-driver runs
// under driver crashes, agent crash/restart episodes and an unreliable
// control plane; -json writes the report), then the 1/2/4-driver scaling
// sweep with its agent-churn column gating makespan under agent faults
// within a tuned envelope of fault-free (-csv writes federation_scale.csv
// and federation_agent_churn.csv); it is likewise explicit-only. The streaming
// experiment sweeps -streaming-seeds seeded operator topologies under
// every placement policy on the heterogeneous cluster and gates on the
// paper's ordering — RUPAM's demand-vector placement must sustain at
// least the throughput of Storm-style resource-aware placement, which
// must sustain at least blind round-robin (-csv writes
// streaming_throughput.csv, -json the full report; a gate or invariant
// violation exits nonzero). It is likewise explicit-only.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
	"strings"
	"time"

	"rupam/internal/chaos"
	"rupam/internal/experiments"
	"rupam/internal/metrics"
	"rupam/internal/perf"
)

// experimentNames is every value -experiment accepts. "faults", "chaos"
// and "perf" are the only ones outside "all": the first two inject
// failures, so the default artifact sweep stays byte-identical run to
// run, and "perf" measures wall time, which no artifact may depend on.
var experimentNames = []string{
	"all", "tab2", "tab4", "fig2", "fig3", "fig5", "fig6", "tab5",
	"fig7", "fig8", "fig9", "ablations", "faults", "chaos", "recovery",
	"tracesanity", "tenancy", "preempt", "elastic", "federation",
	"streaming", "perf",
}

func main() {
	exp := flag.String("experiment", "all", "experiment to regenerate: "+strings.Join(experimentNames, "|"))
	runs := flag.Int("runs", 5, "repetitions for fig5")
	seed := flag.Uint64("seed", 1, "base PRNG seed")
	csvDir := flag.String("csv", "", "directory for raw CSV series (fig2, fig3, fig9)")
	chaosSeeds := flag.Int("chaos-seeds", 20, "fault-plan seeds in the chaos sweep")
	jsonPath := flag.String("json", "", "file for the chaos/tenancy sweep's JSON report")
	tenancySeeds := flag.Int("tenancy-seeds", 5, "arrival-stream seeds in the tenancy sweep")
	tenancyApps := flag.Int("tenancy-apps", 10, "application arrivals per tenancy stream")
	elasticSeeds := flag.Int("elastic-seeds", 0, "arrival-stream seeds per policy in the elastic sweep (0 = default)")
	fedSeeds := flag.Int("federation-seeds", 5, "fault-plan seeds in the federation soak")
	streamingSeeds := flag.Int("streaming-seeds", 0, "topology seeds per placer in the streaming sweep (0 = default)")
	perfScale := flag.String("perf-scale", "standard", "perf battery sweep size: smoke|standard")
	perfReps := flag.Int("perf-reps", 3, "perf battery repetitions per case (fastest kept)")
	perfUnopt := flag.Bool("perf-compare-unopt", true, "pair every perf case with a run under the unoptimized reference kernels")
	baselinePath := flag.String("baseline", "", "BENCH JSON to compare the perf battery against (regressions fail the run)")
	threshold := flag.Float64("threshold", 0.15, "events/sec regression tolerated against -baseline")
	kernelBaseline := flag.String("kernel-baseline", "", "kernel-baseline JSON to embed in the perf battery's -json artifact")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	tracePath := flag.String("trace", "", "write a runtime execution trace to this file")
	flag.Parse()

	known := false
	for _, n := range experimentNames {
		if *exp == n {
			known = true
			break
		}
	}
	if !known {
		fmt.Fprintf(os.Stderr, "rupam-bench: unknown experiment %q (have: %s)\n",
			*exp, strings.Join(experimentNames, ", "))
		flag.Usage()
		os.Exit(2)
	}
	if *runs < 1 {
		fmt.Fprintf(os.Stderr, "rupam-bench: -runs must be at least 1, got %d\n", *runs)
		flag.Usage()
		os.Exit(2)
	}
	if *perfScale != perf.ScaleSmoke && *perfScale != perf.ScaleStandard {
		fmt.Fprintf(os.Stderr, "rupam-bench: -perf-scale must be %s or %s, got %q\n",
			perf.ScaleSmoke, perf.ScaleStandard, *perfScale)
		flag.Usage()
		os.Exit(2)
	}
	if *perfReps < 1 {
		fmt.Fprintf(os.Stderr, "rupam-bench: -perf-reps must be at least 1, got %d\n", *perfReps)
		flag.Usage()
		os.Exit(2)
	}

	stopProfiles := startProfiles(*cpuProfile, *memProfile, *tracePath)
	defer stopProfiles()

	writeCSV := func(name string, write func(f *os.File) error) {
		if *csvDir == "" {
			return
		}
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "rupam-bench: %v\n", err)
			os.Exit(1)
		}
		f, err := os.Create(filepath.Join(*csvDir, name))
		if err != nil {
			fmt.Fprintf(os.Stderr, "rupam-bench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := write(f); err != nil {
			fmt.Fprintf(os.Stderr, "rupam-bench: writing %s: %v\n", name, err)
			os.Exit(1)
		}
	}

	w := os.Stdout
	run := func(name string, fn func()) {
		fmt.Fprintf(w, "==== %s ====\n", name)
		start := time.Now()
		fn()
		fmt.Fprintf(w, "(generated in %.1fs wall time)\n\n", time.Since(start).Seconds())
	}

	all := *exp == "all"
	matched := false
	if all || *exp == "tab2" {
		matched = true
		run("Table II", func() { experiments.TableII(w) })
	}
	if all || *exp == "tab4" {
		matched = true
		run("Table IV", func() { experiments.TableIV(w) })
	}
	if all || *exp == "fig2" {
		matched = true
		run("Figure 2", func() {
			r := experiments.Fig2(*seed)
			r.Print(w)
			writeCSV("fig2_trace.csv", func(f *os.File) error {
				return metrics.WriteTraceCSV(f, r.Trace)
			})
		})
	}
	if all || *exp == "fig3" {
		matched = true
		run("Figure 3", func() {
			r := experiments.Fig3(*seed)
			r.Print(w)
			writeCSV("fig3_tasks.csv", func(f *os.File) error {
				return metrics.WriteTaskRowsCSV(f, r.Rows)
			})
		})
	}
	if all || *exp == "fig5" {
		matched = true
		run("Figure 5", func() { experiments.Fig5(*runs).Print(w) })
	}
	if all || *exp == "fig6" {
		matched = true
		run("Figure 6", func() { experiments.Fig6(nil, *seed).Print(w) })
	}
	if all || *exp == "tab5" {
		matched = true
		run("Table V", func() { experiments.Tab5(*seed).Print(w) })
	}
	if all || *exp == "fig7" {
		matched = true
		run("Figure 7", func() { experiments.Fig7(*seed).Print(w) })
	}
	if all || *exp == "fig8" {
		matched = true
		run("Figure 8", func() { experiments.Fig8(*seed).Print(w) })
	}
	if all || *exp == "fig9" {
		matched = true
		run("Figure 9", func() {
			r := experiments.Fig9(*seed)
			r.Print(w)
			writeCSV("fig9_spark.csv", func(f *os.File) error {
				return metrics.WriteBalanceCSV(f, r.Spark)
			})
			writeCSV("fig9_rupam.csv", func(f *os.File) error {
				return metrics.WriteBalanceCSV(f, r.RUPAM)
			})
		})
	}
	if all || *exp == "ablations" {
		matched = true
		run("Ablations", func() { experiments.Ablations(*seed).Print(w) })
	}
	// Deliberately NOT part of "all": fault injection would perturb the
	// deterministic artifact sweep above.
	if *exp == "faults" {
		matched = true
		run("Fault recovery", func() { experiments.FaultRecovery(*seed).Print(w) })
	}
	if *exp == "chaos" {
		matched = true
		run("Chaos soak", func() {
			if *chaosSeeds < 1 {
				fmt.Fprintf(os.Stderr, "rupam-bench: -chaos-seeds must be at least 1, got %d\n", *chaosSeeds)
				os.Exit(2)
			}
			seeds := make([]uint64, *chaosSeeds)
			for i := range seeds {
				seeds[i] = *seed + uint64(i)
			}
			rep := chaos.Soak(chaos.Config{Seeds: seeds})
			rep.Print(w)
			if *jsonPath != "" {
				f, err := os.Create(*jsonPath)
				if err != nil {
					fmt.Fprintf(os.Stderr, "rupam-bench: %v\n", err)
					os.Exit(1)
				}
				defer f.Close()
				if err := rep.WriteJSON(f); err != nil {
					fmt.Fprintf(os.Stderr, "rupam-bench: writing %s: %v\n", *jsonPath, err)
					os.Exit(1)
				}
			}
			if rep.Violations > 0 {
				fmt.Fprintf(os.Stderr, "rupam-bench: chaos sweep found %d invariant violations\n", rep.Violations)
				os.Exit(1)
			}
		})
	}
	if *exp == "recovery" {
		matched = true
		run("Crash recovery", func() {
			if *chaosSeeds < 1 {
				fmt.Fprintf(os.Stderr, "rupam-bench: -chaos-seeds must be at least 1, got %d\n", *chaosSeeds)
				os.Exit(2)
			}
			seeds := make([]uint64, *chaosSeeds)
			for i := range seeds {
				seeds[i] = *seed + uint64(i)
			}
			rep := chaos.RecoverySoak(chaos.Config{Seeds: seeds})
			rep.Print(w)
			if *jsonPath != "" {
				f, err := os.Create(*jsonPath)
				if err != nil {
					fmt.Fprintf(os.Stderr, "rupam-bench: %v\n", err)
					os.Exit(1)
				}
				defer f.Close()
				if err := rep.WriteJSON(f); err != nil {
					fmt.Fprintf(os.Stderr, "rupam-bench: writing %s: %v\n", *jsonPath, err)
					os.Exit(1)
				}
			}
			if rep.Violations > 0 {
				fmt.Fprintf(os.Stderr, "rupam-bench: recovery sweep found %d violations\n", rep.Violations)
				os.Exit(1)
			}
		})
	}
	if *exp == "tenancy" {
		matched = true
		run("Multi-tenant sweep", func() {
			if *tenancySeeds < 1 || *tenancyApps < 1 {
				fmt.Fprintf(os.Stderr, "rupam-bench: -tenancy-seeds and -tenancy-apps must be at least 1\n")
				os.Exit(2)
			}
			rep := experiments.Tenancy(experiments.TenancyConfig{
				BaseSeed: *seed,
				Seeds:    *tenancySeeds,
				Apps:     *tenancyApps,
			})
			rep.Print(w)
			writeCSV("tenancy_pools.csv", func(f *os.File) error {
				return rep.WritePoolCSV(f)
			})
			if *jsonPath != "" {
				f, err := os.Create(*jsonPath)
				if err != nil {
					fmt.Fprintf(os.Stderr, "rupam-bench: %v\n", err)
					os.Exit(1)
				}
				defer f.Close()
				if err := rep.WriteJSON(f); err != nil {
					fmt.Fprintf(os.Stderr, "rupam-bench: writing %s: %v\n", *jsonPath, err)
					os.Exit(1)
				}
			}
			if rep.Violations > 0 {
				fmt.Fprintf(os.Stderr, "rupam-bench: tenancy sweep found %d invariant violations\n", rep.Violations)
				os.Exit(1)
			}
		})
	}
	if *exp == "preempt" {
		matched = true
		run("Preemption soak", func() {
			if *chaosSeeds < 1 {
				fmt.Fprintf(os.Stderr, "rupam-bench: -chaos-seeds must be at least 1, got %d\n", *chaosSeeds)
				os.Exit(2)
			}
			seeds := make([]uint64, *chaosSeeds)
			for i := range seeds {
				seeds[i] = *seed + uint64(i)
			}
			rep := chaos.PreemptionSoak(chaos.PreemptConfig{Seeds: seeds})
			rep.Print(w)
			if *jsonPath != "" {
				f, err := os.Create(*jsonPath)
				if err != nil {
					fmt.Fprintf(os.Stderr, "rupam-bench: %v\n", err)
					os.Exit(1)
				}
				defer f.Close()
				if err := rep.WriteJSON(f); err != nil {
					fmt.Fprintf(os.Stderr, "rupam-bench: writing %s: %v\n", *jsonPath, err)
					os.Exit(1)
				}
			}
			if rep.Violations > 0 {
				fmt.Fprintf(os.Stderr, "rupam-bench: preemption soak found %d invariant violations\n", rep.Violations)
				os.Exit(1)
			}
		})
	}
	if *exp == "elastic" {
		matched = true
		run("Elastic Pareto sweep", func() {
			if *elasticSeeds < 0 {
				fmt.Fprintf(os.Stderr, "rupam-bench: -elastic-seeds must be non-negative, got %d\n", *elasticSeeds)
				os.Exit(2)
			}
			rep := experiments.Elastic(experiments.ElasticConfig{
				BaseSeed: *seed,
				Seeds:    *elasticSeeds,
			})
			rep.Print(w)
			writeCSV("elastic_pareto.csv", func(f *os.File) error {
				return rep.WriteParetoCSV(f)
			})
			if *jsonPath != "" {
				f, err := os.Create(*jsonPath)
				if err != nil {
					fmt.Fprintf(os.Stderr, "rupam-bench: %v\n", err)
					os.Exit(1)
				}
				defer f.Close()
				if err := rep.WriteJSON(f); err != nil {
					fmt.Fprintf(os.Stderr, "rupam-bench: writing %s: %v\n", *jsonPath, err)
					os.Exit(1)
				}
			}
			if rep.Violations > 0 {
				fmt.Fprintf(os.Stderr, "rupam-bench: elastic sweep found %d violations\n", rep.Violations)
				os.Exit(1)
			}
		})
	}
	if *exp == "federation" {
		matched = true
		run("Federation soak + scaling sweep", func() {
			if *fedSeeds < 1 {
				fmt.Fprintf(os.Stderr, "rupam-bench: -federation-seeds must be at least 1, got %d\n", *fedSeeds)
				os.Exit(2)
			}
			seeds := make([]uint64, *fedSeeds)
			for i := range seeds {
				seeds[i] = *seed + uint64(i)
			}
			rep := chaos.FederationSoak(chaos.FederationConfig{Seeds: seeds})
			rep.Print(w)
			if *jsonPath != "" {
				f, err := os.Create(*jsonPath)
				if err != nil {
					fmt.Fprintf(os.Stderr, "rupam-bench: %v\n", err)
					os.Exit(1)
				}
				defer f.Close()
				if err := rep.WriteJSON(f); err != nil {
					fmt.Fprintf(os.Stderr, "rupam-bench: writing %s: %v\n", *jsonPath, err)
					os.Exit(1)
				}
			}
			sweep := experiments.Federation(experiments.FederationConfig{BaseSeed: *seed})
			sweep.Print(w)
			writeCSV("federation_scale.csv", func(f *os.File) error {
				return sweep.WriteCSV(f)
			})
			writeCSV("federation_agent_churn.csv", func(f *os.File) error {
				return sweep.WriteChurnCSV(f)
			})
			if rep.Violations+sweep.Violations > 0 {
				fmt.Fprintf(os.Stderr, "rupam-bench: federation sweep found %d invariant violations\n",
					rep.Violations+sweep.Violations)
				os.Exit(1)
			}
		})
	}
	if *exp == "streaming" {
		matched = true
		run("Streaming placement sweep", func() {
			if *streamingSeeds < 0 {
				fmt.Fprintf(os.Stderr, "rupam-bench: -streaming-seeds must be non-negative, got %d\n", *streamingSeeds)
				os.Exit(2)
			}
			rep := experiments.Streaming(experiments.StreamingConfig{
				BaseSeed: *seed,
				Seeds:    *streamingSeeds,
			})
			rep.Print(w)
			writeCSV("streaming_throughput.csv", func(f *os.File) error {
				return rep.WriteThroughputCSV(f)
			})
			if *jsonPath != "" {
				f, err := os.Create(*jsonPath)
				if err != nil {
					fmt.Fprintf(os.Stderr, "rupam-bench: %v\n", err)
					os.Exit(1)
				}
				defer f.Close()
				if err := rep.WriteJSON(f); err != nil {
					fmt.Fprintf(os.Stderr, "rupam-bench: writing %s: %v\n", *jsonPath, err)
					os.Exit(1)
				}
			}
			if rep.Violations > 0 {
				fmt.Fprintf(os.Stderr, "rupam-bench: streaming sweep found %d violations\n", rep.Violations)
				os.Exit(1)
			}
		})
	}
	if *exp == "perf" {
		matched = true
		run("Perf battery", func() {
			rep := perf.RunBattery(perf.Options{
				Scale:        *perfScale,
				CompareUnopt: *perfUnopt,
				Reps:         *perfReps,
				Progress:     func(s string) { fmt.Fprintln(w, s) },
			})
			if *kernelBaseline != "" {
				kb, err := perf.ReadKernelBaseline(*kernelBaseline)
				if err != nil {
					fmt.Fprintf(os.Stderr, "rupam-bench: %v\n", err)
					stopProfiles()
					os.Exit(1)
				}
				rep.BaselineKernel = kb
				fmt.Fprintf(w, "kernel baseline %s: %.0f events/s -> %.0f events/s (%.2fx)\n",
					kb.Commit, kb.Total.EventsPerSec, rep.Total.EventsPerSec,
					rep.Total.EventsPerSec/kb.Total.EventsPerSec)
			}
			if *jsonPath != "" {
				f, err := os.Create(*jsonPath)
				if err != nil {
					fmt.Fprintf(os.Stderr, "rupam-bench: %v\n", err)
					stopProfiles()
					os.Exit(1)
				}
				defer f.Close()
				if err := rep.WriteJSON(f); err != nil {
					fmt.Fprintf(os.Stderr, "rupam-bench: writing %s: %v\n", *jsonPath, err)
					stopProfiles()
					os.Exit(1)
				}
			}
			if *baselinePath != "" {
				base, err := perf.ReadReportFile(*baselinePath)
				if err != nil {
					fmt.Fprintf(os.Stderr, "rupam-bench: %v\n", err)
					stopProfiles()
					os.Exit(1)
				}
				violations := perf.Compare(base, rep, *threshold)
				for _, v := range violations {
					fmt.Fprintf(os.Stderr, "rupam-bench: perf regression: %s\n", v)
				}
				if len(violations) > 0 {
					stopProfiles()
					os.Exit(1)
				}
				fmt.Fprintf(w, "no regression against %s (threshold %.0f%%)\n", *baselinePath, *threshold*100)
			}
		})
	}
	if *exp == "tracesanity" {
		matched = true
		run("Trace sanity", func() {
			rep := experiments.RunTraceSanity(*seed)
			rep.Print(w)
			if len(rep.Violations) > 0 {
				fmt.Fprintf(os.Stderr, "rupam-bench: trace sanity found %d invariant violations\n", len(rep.Violations))
				os.Exit(1)
			}
		})
	}
	_ = matched
}

// startProfiles wires the standard pprof/trace outputs around the run
// and returns the (idempotent) stop function. Profiling the perf
// battery is the intended use:
//
//	rupam-bench -experiment perf -cpuprofile cpu.out
func startProfiles(cpu, mem, tr string) func() {
	var stops []func()
	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "rupam-bench: %v\n", err)
		os.Exit(1)
	}
	if cpu != "" {
		f, err := os.Create(cpu)
		if err != nil {
			fail(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fail(err)
		}
		stops = append(stops, func() {
			pprof.StopCPUProfile()
			f.Close()
		})
	}
	if tr != "" {
		f, err := os.Create(tr)
		if err != nil {
			fail(err)
		}
		if err := trace.Start(f); err != nil {
			fail(err)
		}
		stops = append(stops, func() {
			trace.Stop()
			f.Close()
		})
	}
	if mem != "" {
		stops = append(stops, func() {
			f, err := os.Create(mem)
			if err != nil {
				fmt.Fprintf(os.Stderr, "rupam-bench: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "rupam-bench: writing %s: %v\n", mem, err)
			}
		})
	}
	done := false
	return func() {
		if done {
			return
		}
		done = true
		for _, stop := range stops {
			stop()
		}
	}
}
