// Command hydra-sysbench prints the simulated Hydra cluster's hardware
// specifications (Table II) and runs the SysBench/Iperf characterization
// benchmarks against the node models (Table IV).
package main

import (
	"os"

	"rupam/internal/experiments"
)

func main() {
	experiments.TableII(os.Stdout)
	os.Stdout.WriteString("\n")
	experiments.TableIV(os.Stdout)
}
