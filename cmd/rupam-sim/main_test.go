package main

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func TestValidateStreamingFlags(t *testing.T) {
	cases := []struct {
		name      string
		streaming bool
		placer    string
		sloMs     float64
		explicit  []string
		wantErr   string
	}{
		{"defaults", false, "rupam", 2000, nil, ""},
		{"streaming defaults", true, "rupam", 2000, []string{"streaming"}, ""},
		{"streaming with placer and slo", true, "default", 500,
			[]string{"streaming", "placer", "slo-ms"}, ""},
		{"streaming with trace and chaos", true, "resource", 2000,
			[]string{"streaming", "placer", "trace", "chaos-seed", "seed"}, ""},
		{"unknown placer", true, "storm", 2000, []string{"streaming", "placer"},
			"unknown placer"},
		{"unknown placer without streaming", false, "storm", 2000, []string{"placer"},
			"unknown placer"},
		{"placer without streaming", false, "default", 2000, []string{"placer"},
			"applies only to a streaming run"},
		{"slo without streaming", false, "rupam", 500, []string{"slo-ms"},
			"applies only to a streaming run"},
		{"nonpositive slo", true, "rupam", 0, []string{"streaming", "slo-ms"},
			"-slo-ms must be positive"},
		{"streaming with workload", true, "rupam", 2000,
			[]string{"streaming", "workload"}, "does not apply to a streaming run"},
		{"streaming with compare", true, "rupam", 2000,
			[]string{"streaming", "compare"}, "does not apply to a streaming run"},
		{"streaming with wal", true, "rupam", 2000,
			[]string{"streaming", "wal"}, "does not apply to a streaming run"},
		{"streaming with drivers", true, "rupam", 2000,
			[]string{"streaming", "drivers"}, "does not apply to a streaming run"},
	}
	for _, tc := range cases {
		explicit := map[string]bool{}
		for _, f := range tc.explicit {
			explicit[f] = true
		}
		err := validateStreamingFlags(tc.streaming, tc.placer, tc.sloMs, explicit)
		if tc.wantErr == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
		} else if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error %v, want one containing %q", tc.name, err, tc.wantErr)
		}
	}
}

// buildCLI compiles the command under test once per test run.
func buildCLI(t *testing.T, pkgDir string) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "cli")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	cmd.Dir = pkgDir
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// TestStreamingCLI drives the built binary: bad flag combinations must
// exit 2 with a diagnostic, and a plain streaming run must exit 0 and
// report throughput.
func TestStreamingCLI(t *testing.T) {
	bin := buildCLI(t, ".")

	bad := [][]string{
		{"-streaming", "-placer", "storm"},
		{"-placer", "rupam"},
		{"-slo-ms", "100"},
		{"-streaming", "-slo-ms", "-5"},
		{"-streaming", "-workload", "WC"},
		{"-streaming", "-compare"},
		{"-streaming", "-scheduler", "spark"},
		{"-streaming", "-drivers", "2"},
	}
	for _, args := range bad {
		out, err := exec.Command(bin, args...).CombinedOutput()
		ee, ok := err.(*exec.ExitError)
		if !ok || ee.ExitCode() != 2 {
			t.Errorf("%v: want exit 2, got %v\n%s", args, err, out)
		}
		if !strings.Contains(string(out), "rupam-sim:") {
			t.Errorf("%v: no diagnostic printed:\n%s", args, out)
		}
	}

	out, err := exec.Command(bin, "-streaming", "-seed", "2", "-placer", "resource", "-slo-ms", "1500").CombinedOutput()
	if err != nil {
		t.Fatalf("streaming run failed: %v\n%s", err, out)
	}
	for _, want := range []string{"streaming stream-2 under resource placement", "throughput:", "SLO 1500ms"} {
		if !strings.Contains(string(out), want) {
			t.Errorf("streaming report missing %q:\n%s", want, out)
		}
	}
}

// TestAgentCrashCLI drives the built binary through the -agent-crash
// flag: malformed plans and non-federated combinations must exit 2 with
// a diagnostic, and a valid federated run must exit 0 and report the
// agent fault domain.
func TestAgentCrashCLI(t *testing.T) {
	bin := buildCLI(t, ".")

	bad := [][]string{
		// Federated-only flag without -drivers.
		{"-agent-crash", "thor1:2:3"},
		// Malformed plan strings.
		{"-drivers", "2", "-agent-crash", "thor1:2"},
		{"-drivers", "2", "-agent-crash", "thor1:-1:3"},
		{"-drivers", "2", "-agent-crash", "thor1:2:0"},
		{"-drivers", "2", "-agent-crash", "thor1:2:-4"},
		{"-drivers", "2", "-agent-crash", "thor1:x:3"},
		// Unknown node in the hydra cluster.
		{"-drivers", "2", "-agent-crash", "nohost:2:3"},
		// Streaming runs have no placement agents.
		{"-streaming", "-agent-crash", "thor1:2:3"},
		// Overlapping crash windows on the same node.
		{"-drivers", "2", "-agent-crash", "thor1:2:10", "-agent-crash", "thor1:5:3"},
	}
	for _, args := range bad {
		out, err := exec.Command(bin, args...).CombinedOutput()
		ee, ok := err.(*exec.ExitError)
		if !ok || ee.ExitCode() != 2 {
			t.Errorf("%v: want exit 2, got %v\n%s", args, err, out)
		}
		// Post-parse validation prints "rupam-sim: ..."; malformed plan
		// strings are rejected at parse time by the flag package itself.
		if s := string(out); !strings.Contains(s, "rupam-sim:") &&
			!strings.Contains(s, "invalid value") {
			t.Errorf("%v: no diagnostic printed:\n%s", args, out)
		}
	}

	out, err := exec.Command(bin,
		"-drivers", "2", "-agent-crash", "thor1:2:3",
		"-input", "0.25", "-partitions", "8", "-iterations", "1").CombinedOutput()
	if err != nil {
		t.Fatalf("federated agent-crash run failed: %v\n%s", err, out)
	}
	for _, want := range []string{"agents: 1 crashes, 1 restarts", "fingerprint"} {
		if !strings.Contains(string(out), want) {
			t.Errorf("federated report missing %q:\n%s", want, out)
		}
	}
}
