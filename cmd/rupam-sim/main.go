// Command rupam-sim runs one workload on the simulated cluster under a
// chosen task scheduler and prints an execution report: total time,
// per-job times, breakdown, locality table, and failure counters.
//
// Usage:
//
//	rupam-sim -workload PR [-scheduler rupam|spark] [-cluster hydra|motivation]
//	          [-input GB] [-partitions N] [-iterations N] [-seed N] [-compare]
//	          [-chardb FILE] [-chaos-seed N] [-preempt NODE:AT:GRACE]...
//	          [-wal FILE] [-crash-at T] [-restart-after D] [-drivers N]
//	          [-agent-crash NODE:AT:DOWNTIME]...
//	          [-trace FILE] [-critical-path] [-explain TASKID]
//	rupam-sim -streaming [-placer default|resource|rupam] [-slo-ms MS]
//	          [-seed N] [-chaos-seed N] [-trace FILE]
//
// With -chardb, RUPAM's task-characteristics database (DB_taskchar) is
// loaded from FILE before the run (if it exists) and saved back after —
// the paper's observation that data centers re-run the same applications
// periodically, letting characterization carry across job runs.
//
// With -chaos-seed, a random gray-failure fault plan (crashes, NIC/disk/
// CPU degradation, memory pressure, task flakes, heartbeat loss) drawn
// with that seed is injected into the run, under the same hardened
// framework configuration the chaos soak harness uses.
//
// With -preempt NODE:AT:GRACE (repeatable), the named node receives a spot
// preemption notice at virtual time AT seconds and is reclaimed GRACE
// seconds later. During the grace window the driver fences the instance
// out of scheduling, re-replicates its completed shuffle outputs, and
// takes the kill as an announced loss (no blacklist entry, no retry-budget
// charge) — the single-run lens on the elastic substrate's drain protocol.
//
// With -wal FILE, every driver state transition is appended to FILE as a
// CRC-framed, virtual-clock-stamped write-ahead log with periodic snapshot
// checkpoints. With -crash-at T, the driver process is killed at virtual
// time T seconds and recovers from the log after -restart-after D seconds
// (default 1): state is replayed, in-flight attempts on surviving
// executors are re-adopted, buffered completions are redelivered, and the
// run resumes on the virtual clock.
//
// With -drivers N (N > 1), the run switches to the federated harness: N
// driver shards share the Hydra cluster, each owning one copy of the
// workload, and every placement is arbitrated through the two-phase
// claim protocol against per-node agents. -chaos-seed then draws the
// federation fault mix (driver crashes, agent crash/restart episodes,
// plus an unreliable control plane); single-run lenses (-compare, -wal,
// -trace, -chardb, -preempt) do not apply.
//
// With -agent-crash NODE:AT:DOWNTIME (repeatable, federated runs only),
// the named node's placement agent is killed amnesiac at virtual time AT
// seconds and restarted DOWNTIME seconds later, at which point it bumps
// its incarnation, fences pre-crash protocol messages, and rebuilds
// surviving reservations from the drivers' answers to its RESYNC
// broadcast — the single-run lens on the agent fault domain.
//
// With -streaming, the run switches from a batch workload to a seeded
// long-running streaming topology (source → operator DAG → sink) executed
// as micro-batches on the Hydra cluster. -placer selects the operator
// placement policy (capability-blind round-robin, Storm-style
// resource-aware on aggregate capacity, or RUPAM's demand-vector
// matching); -slo-ms sets the end-to-end record-latency objective the
// attainment figure is reported against. -seed picks the topology,
// -chaos-seed draws the streaming fault mix (crashes, gray CPU
// degradation, spot reclamation, load spikes) that drives live operator
// migration, and -trace records placement decisions and per-operator
// drain/handoff spans. Batch-only flags do not apply.
//
// With -trace FILE, every task attempt, scheduler decision and fault
// window is recorded and exported as Chrome trace_event JSON — load the
// file in Perfetto (https://ui.perfetto.dev) or chrome://tracing.
// -critical-path prints the run's longest dependency path with a
// per-category time breakdown and per-segment what-if slack; -explain
// TASKID prints the full placement audit for one task (every candidate
// the scheduler weighed, its scores, and why each loser lost).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"rupam/internal/chaos"
	"rupam/internal/experiments"
	"rupam/internal/faults"
	"rupam/internal/federation"
	"rupam/internal/metrics"
	"rupam/internal/simx"
	"rupam/internal/spark"
	"rupam/internal/streaming"
	"rupam/internal/tracing"
	"rupam/internal/wal"
	"rupam/internal/workloads"
)

// usageError prints the problem plus usage and exits 2 — bad flag values
// must not surface as panics from deep inside the simulator.
func usageError(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "rupam-sim: "+format+"\n", args...)
	flag.Usage()
	os.Exit(2)
}

// preemptPlan collects repeated -preempt NODE:AT:GRACE values into spot
// reclamation events.
type preemptPlan []faults.Event

func (p *preemptPlan) String() string {
	var parts []string
	for _, ev := range *p {
		parts = append(parts, fmt.Sprintf("%s:%g:%g", ev.Node, ev.At, ev.Duration))
	}
	return strings.Join(parts, ",")
}

func (p *preemptPlan) Set(s string) error {
	parts := strings.Split(s, ":")
	if len(parts) != 3 || parts[0] == "" {
		return fmt.Errorf("want NODE:AT:GRACE, got %q", s)
	}
	at, err := strconv.ParseFloat(parts[1], 64)
	if err != nil || at < 0 {
		return fmt.Errorf("notice time %q must be a non-negative number of seconds", parts[1])
	}
	grace, err := strconv.ParseFloat(parts[2], 64)
	if err != nil || grace <= 0 {
		return fmt.Errorf("grace window %q must be a positive number of seconds", parts[2])
	}
	*p = append(*p, faults.Event{
		Kind: faults.SpotPreempt, Node: parts[0], At: at, Duration: grace,
	})
	return nil
}

// agentCrashPlan collects repeated -agent-crash NODE:AT:DOWNTIME values
// into federation agent kill points.
type agentCrashPlan []faults.Event

func (p *agentCrashPlan) String() string {
	var parts []string
	for _, ev := range *p {
		parts = append(parts, fmt.Sprintf("%s:%g:%g", ev.Node, ev.At, ev.Duration))
	}
	return strings.Join(parts, ",")
}

func (p *agentCrashPlan) Set(s string) error {
	parts := strings.Split(s, ":")
	if len(parts) != 3 || parts[0] == "" {
		return fmt.Errorf("want NODE:AT:DOWNTIME, got %q", s)
	}
	at, err := strconv.ParseFloat(parts[1], 64)
	if err != nil || at < 0 {
		return fmt.Errorf("crash time %q must be a non-negative number of seconds", parts[1])
	}
	down, err := strconv.ParseFloat(parts[2], 64)
	if err != nil || down <= 0 {
		return fmt.Errorf("downtime %q must be a positive number of seconds", parts[2])
	}
	*p = append(*p, faults.Event{
		Kind: faults.AgentCrash, Node: parts[0], At: at, Duration: down,
	})
	return nil
}

func main() {
	workload := flag.String("workload", "PR", "workload: "+strings.Join(workloads.Names(), ", "))
	scheduler := flag.String("scheduler", "rupam", "task scheduler: spark or rupam")
	clusterName := flag.String("cluster", "hydra", "cluster topology: hydra or motivation")
	input := flag.Float64("input", 0, "input size in GB (0 = Table III default)")
	partitions := flag.Int("partitions", 0, "input partitions (0 = default)")
	iterations := flag.Int("iterations", 0, "iterations (0 = default)")
	seed := flag.Uint64("seed", 1, "PRNG seed")
	compare := flag.Bool("compare", false, "run under both schedulers and compare")
	charDB := flag.String("chardb", "", "persist RUPAM's DB_taskchar across invocations")
	chaosSeed := flag.Uint64("chaos-seed", 0, "inject a random gray-failure fault plan drawn with this seed (0 = none)")
	var preempts preemptPlan
	flag.Var(&preempts, "preempt", "spot-preempt NODE at time AT with a GRACE-second notice window, as NODE:AT:GRACE (repeatable)")
	var agentCrashes agentCrashPlan
	flag.Var(&agentCrashes, "agent-crash", "kill NODE's placement agent at time AT and restart it DOWNTIME seconds later, as NODE:AT:DOWNTIME (repeatable, federated runs only)")
	walPath := flag.String("wal", "", "append the driver write-ahead log to this file")
	crashAt := flag.Float64("crash-at", 0, "kill the driver at this virtual time in seconds and recover from the WAL (0 = never)")
	restartAfter := flag.Float64("restart-after", 1, "driver restart delay in seconds after -crash-at")
	drivers := flag.Int("drivers", 1, "federated driver count; >1 runs N driver shards, one workload copy each, placements arbitrated by the claim protocol")
	tracePath := flag.String("trace", "", "write a Chrome trace_event JSON file (load in Perfetto)")
	critPath := flag.Bool("critical-path", false, "print the run's critical path with category breakdown and slack")
	explain := flag.Int("explain", -1, "print the scheduling audit for one task ID")
	streamingRun := flag.Bool("streaming", false, "run a seeded streaming topology instead of a batch workload")
	placerName := flag.String("placer", "rupam", "streaming operator placement policy: "+strings.Join(streaming.PlacerNames, ", "))
	sloMs := flag.Float64("slo-ms", 2000, "streaming end-to-end record latency SLO in milliseconds")
	flag.Parse()

	explicit := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
	if err := validateStreamingFlags(*streamingRun, *placerName, *sloMs, explicit); err != nil {
		usageError("%v", err)
	}

	if !workloads.Known(*workload) {
		usageError("unknown workload %q (have: %s)", *workload, strings.Join(workloads.Names(), ", "))
	}
	if *scheduler != experiments.SchedSpark && *scheduler != experiments.SchedRUPAM {
		usageError("unknown scheduler %q (have: spark, rupam)", *scheduler)
	}
	if *clusterName != "hydra" && *clusterName != "motivation" {
		usageError("unknown cluster %q (have: hydra, motivation)", *clusterName)
	}
	if *input < 0 || *partitions < 0 || *iterations < 0 {
		usageError("-input, -partitions and -iterations must be non-negative")
	}
	wantTracing := *tracePath != "" || *critPath || *explain >= 0
	if wantTracing && *compare {
		usageError("-trace, -critical-path and -explain apply to a single run; drop -compare")
	}
	if *crashAt < 0 || *restartAfter <= 0 {
		usageError("-crash-at must be non-negative and -restart-after positive")
	}
	if *drivers < 1 {
		usageError("-drivers must be at least 1, got %d", *drivers)
	}
	if *drivers > 1 {
		for _, bad := range []string{
			"compare", "chardb", "wal", "crash-at", "restart-after",
			"preempt", "trace", "critical-path", "explain", "scheduler", "cluster",
		} {
			if explicit[bad] {
				usageError("-%s does not apply to a federated run; drop it or -drivers", bad)
			}
		}
	} else if len(agentCrashes) > 0 {
		usageError("-agent-crash applies only to a federated run; add -drivers N (N > 1)")
	}
	if (*walPath != "" || *crashAt > 0) && *compare {
		usageError("-wal and -crash-at apply to a single run; drop -compare")
	}
	// Validate the trace path up front: a typo'd directory must fail before
	// the simulation spends minutes running.
	var traceFile *os.File
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			usageError("cannot write -trace file: %v", err)
		}
		traceFile = f
	}

	if *streamingRun {
		runStreaming(*seed, *placerName, *sloMs, *chaosSeed, traceFile, *tracePath)
		return
	}

	params := workloads.Params{
		InputGB:    *input,
		Partitions: *partitions,
		Iterations: *iterations,
	}
	if *drivers > 1 {
		cfg := federation.Config{
			Drivers:  *drivers,
			Apps:     *drivers,
			Workload: *workload,
			Params:   params,
			Seed:     *seed,
		}
		if *chaosSeed > 0 {
			names := experiments.BuildCluster(simx.NewEngine(), "hydra").NodeNames()
			cfg.Spark = chaos.HardenedConfig(*seed)
			cfg.Faults = faults.RandomSchedule(*chaosSeed, names, chaos.FederationGen())
		}
		if len(agentCrashes) > 0 {
			names := experiments.BuildCluster(simx.NewEngine(), "hydra").NodeNames()
			known := make(map[string]bool, len(names))
			for _, n := range names {
				known[n] = true
			}
			for _, ev := range agentCrashes {
				if !known[ev.Node] {
					usageError("-agent-crash names unknown node %q (cluster hydra has: %s)",
						ev.Node, strings.Join(names, ", "))
				}
			}
			if cfg.Faults == nil {
				cfg.Faults = &faults.Schedule{}
			}
			cfg.Faults.Events = append(cfg.Faults.Events, agentCrashes...)
			if err := cfg.Faults.Validate(); err != nil {
				usageError("-agent-crash plan invalid: %v", err)
			}
		}
		fedReport(federation.Run(cfg))
		return
	}

	spec := experiments.RunSpec{
		Workload:  *workload,
		Scheduler: *scheduler,
		Cluster:   *clusterName,
		Params:    params,
		Seed:      *seed,
	}
	if *chaosSeed > 0 {
		names := experiments.BuildCluster(simx.NewEngine(), *clusterName).NodeNames()
		spec.Spark = chaos.HardenedConfig(*seed)
		spec.Spark.Faults = faults.RandomSchedule(*chaosSeed, names, chaos.DefaultGen())
	}
	if *crashAt > 0 {
		if spec.Spark.Faults == nil {
			spec.Spark.Faults = &faults.Schedule{}
		}
		spec.Spark.Faults.Events = append(spec.Spark.Faults.Events, faults.Event{
			Kind: faults.DriverCrash, At: *crashAt, Duration: *restartAfter,
		})
	}
	if len(preempts) > 0 {
		names := experiments.BuildCluster(simx.NewEngine(), *clusterName).NodeNames()
		known := make(map[string]bool, len(names))
		for _, n := range names {
			known[n] = true
		}
		for _, ev := range preempts {
			if !known[ev.Node] {
				usageError("-preempt names unknown node %q (cluster %s has: %s)",
					ev.Node, *clusterName, strings.Join(names, ", "))
			}
		}
		if spec.Spark.Faults == nil {
			spec.Spark.Faults = &faults.Schedule{}
		}
		spec.Spark.Faults.Events = append(spec.Spark.Faults.Events, preempts...)
	}
	// Open the WAL sink up front, like -trace: a typo'd path must fail
	// before the simulation runs. The runtime stamps the log with its own
	// virtual clock once the run starts.
	var walFile *os.File
	var walLog *wal.Log
	if *walPath != "" {
		f, err := os.Create(*walPath)
		if err != nil {
			usageError("cannot write -wal file: %v", err)
		}
		walFile = f
		walLog = wal.New(f, wal.Options{})
		spec.Spark.WAL = walLog
	}
	if wantTracing {
		spec.Tracer = tracing.NewCollector()
	}

	if *compare {
		spec.Scheduler = experiments.SchedSpark
		sparkRes := experiments.Run(spec)
		spec.Scheduler = experiments.SchedRUPAM
		rupamRes := experiments.Run(spec)
		report(sparkRes)
		report(rupamRes)
		fmt.Printf("speedup (spark/rupam): %.2fx\n", sparkRes.Duration/rupamRes.Duration)
		return
	}
	if *charDB != "" && spec.Scheduler == experiments.SchedRUPAM {
		res, db := experiments.RunWithCharDB(spec, *charDB)
		report(res)
		fmt.Printf("DB_taskchar: %d task records persisted to %s\n", db, *charDB)
		walReport(walLog, walFile, *walPath)
		traceReports(spec.Tracer, traceFile, *tracePath, *critPath, *explain, res)
		return
	}
	res := experiments.Run(spec)
	report(res)
	walReport(walLog, walFile, *walPath)
	traceReports(spec.Tracer, traceFile, *tracePath, *critPath, *explain, res)
}

// streamingBatchOnly lists the flags that have no meaning in a streaming
// run — anything naming a batch workload, scheduler or single-run lens.
var streamingBatchOnly = []string{
	"workload", "scheduler", "cluster", "input", "partitions", "iterations",
	"compare", "chardb", "wal", "crash-at", "restart-after", "preempt",
	"critical-path", "explain", "drivers", "agent-crash",
}

// validateStreamingFlags enforces the -streaming flag family: the placer
// must exist, -placer/-slo-ms imply -streaming, and batch-only flags are
// rejected on a streaming run. explicit is the set of flags actually
// given on the command line.
func validateStreamingFlags(streamingRun bool, placer string, sloMs float64, explicit map[string]bool) error {
	valid := false
	for _, name := range streaming.PlacerNames {
		if placer == name {
			valid = true
			break
		}
	}
	if !valid {
		return fmt.Errorf("unknown placer %q (have: %s)", placer, strings.Join(streaming.PlacerNames, ", "))
	}
	if !streamingRun {
		for _, name := range []string{"placer", "slo-ms"} {
			if explicit[name] {
				return fmt.Errorf("-%s applies only to a streaming run; add -streaming", name)
			}
		}
		return nil
	}
	if sloMs <= 0 {
		return fmt.Errorf("-slo-ms must be positive, got %g", sloMs)
	}
	for _, bad := range streamingBatchOnly {
		if explicit[bad] {
			return fmt.Errorf("-%s does not apply to a streaming run; drop it or -streaming", bad)
		}
	}
	return nil
}

// runStreaming executes one streaming topology and prints its report.
// Invariant violations exit 1.
func runStreaming(seed uint64, placer string, sloMs float64, chaosSeed uint64, traceFile *os.File, tracePath string) {
	cfg := streaming.Config{Seed: seed, Placer: placer, SLOMs: sloMs}
	if chaosSeed > 0 {
		names := experiments.BuildCluster(simx.NewEngine(), "hydra").NodeNames()
		cfg.Faults = faults.RandomSchedule(chaosSeed, names, chaos.StreamingGen())
	}
	if traceFile != nil {
		cfg.Collector = tracing.NewCollector()
	}
	res := streaming.Run(cfg)
	streamReport(res)
	if traceFile != nil {
		if err := cfg.Collector.WriteChromeTrace(traceFile); err != nil {
			fmt.Fprintf(os.Stderr, "rupam-sim: writing trace: %v\n", err)
			os.Exit(1)
		}
		if err := traceFile.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "rupam-sim: closing trace: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("trace: %d events written to %s (open in https://ui.perfetto.dev)\n",
			cfg.Collector.EventCount(), tracePath)
	}
	if violations := streaming.CheckInvariants(res); len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintf(os.Stderr, "rupam-sim: VIOLATION: %s\n", v)
		}
		os.Exit(1)
	}
}

// streamReport prints a streaming run's outcome: sustained throughput
// against offered load, latency percentiles against the SLO, migrations,
// and the per-operator accounting.
func streamReport(r *streaming.Result) {
	fmt.Printf("== streaming %s under %s placement ==\n", r.Topology, r.Placer)
	fmt.Printf("operators: %d (%d edges)   horizon: %.0fs   drained: %v (quiesced at %.1fs)\n",
		r.OpCount, r.EdgeCount, r.Horizon, r.Drained, r.QuiesceAt)
	fmt.Printf("throughput: %.1f records/s sustained of %.1f offered (%.1f%%)\n",
		r.ThroughputHz, r.OfferedHz, 100*r.ThroughputHz/r.OfferedHz)
	fmt.Printf("latency: p50 %.0fms  p99 %.0fms  SLO %.0fms attained %.1f%%\n",
		r.P50Ms, r.P99Ms, r.SLOMs, 100*r.SLOAttain)
	if len(r.Migrations) > 0 {
		fmt.Printf("migrations: %d\n", len(r.Migrations))
		for _, m := range r.Migrations {
			kind := "graceful"
			if m.Emergency {
				kind = "emergency"
			}
			fmt.Printf("  %-8s %s: %s → %s at %.1fs (%s)\n",
				kind, m.OpName, m.From, m.To, m.Start, m.Reason)
		}
	}
	if r.LoadSpikes > 0 {
		fmt.Printf("load spikes absorbed: %d\n", r.LoadSpikes)
	}
	fmt.Printf("%-8s %-8s %12s %12s %10s\n", "operator", "node", "consumed", "emitted", "maxbacklog")
	for _, o := range r.Ops {
		fmt.Printf("%-8s %-8s %12.0f %12.0f %10.0f\n", o.Name, o.Node, o.Consumed, o.Emitted, o.MaxBacklog)
	}
}

// fedReport prints a federated run's outcome: makespan and completion,
// protocol throughput, control-plane counters, per-driver accounting and
// the determinism fingerprint. Any protocol invariant violation exits 1.
func fedReport(r *federation.Result) {
	fmt.Printf("== federated %d-driver run: %d applications ==\n", r.Drivers, r.Apps)
	fmt.Printf("makespan: %.1fs   completed: %d   aborted: %d   launches: %d\n",
		r.Makespan, r.Completed, r.Aborted, r.Launches)
	fmt.Printf("protocol: %d commits, %.1f placements/s (busiest driver dispatches for %.2fs)\n",
		r.Commits, r.PlacementRate, r.MaxBusySeconds)
	fmt.Printf("control plane: %d sent, %d delivered, %d dropped, %d duped, %d delayed, %d reordered\n",
		r.MsgSent, r.MsgDelivered, r.MsgDropped, r.MsgDuped, r.MsgDelayed, r.MsgReordered)
	if r.AgentCrashes > 0 || r.AgentRestarts > 0 {
		fmt.Printf("agents: %d crashes, %d restarts, %d resyncs, %d claims rebuilt\n",
			r.AgentCrashes, r.AgentRestarts, r.Resyncs, r.RebuiltClaims)
	}
	for _, d := range r.DriverStats {
		fmt.Printf("  driver %d: %d apps, %d commits, %.2fs dispatch, %d crashes, %d recoveries\n",
			d.ID, d.Apps, d.Commits, d.BusySeconds, d.Crashes, d.Recoveries)
	}
	fmt.Printf("fingerprint: %s\n", r.Fingerprint)
	if len(r.Violations) > 0 {
		for _, v := range r.Violations {
			fmt.Fprintf(os.Stderr, "rupam-sim: VIOLATION: %s\n", v)
		}
		os.Exit(1)
	}
}

// walReport flushes and closes the -wal sink. A nil log means the flag was
// not given.
func walReport(l *wal.Log, f *os.File, path string) {
	if l == nil {
		return
	}
	if err := l.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "rupam-sim: write-ahead log: %v\n", err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "rupam-sim: closing wal: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wal: %d records written to %s\n", l.Seq(), path)
}

// traceReports writes the post-run tracing artifacts requested by -trace,
// -critical-path and -explain. A nil collector means none were asked for.
func traceReports(c *tracing.Collector, f *os.File, path string, critPath bool, explain int, res *spark.Result) {
	if c == nil {
		return
	}
	if f != nil {
		if err := c.WriteChromeTrace(f); err != nil {
			fmt.Fprintf(os.Stderr, "rupam-sim: writing trace: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "rupam-sim: closing trace: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("trace: %d events written to %s (open in https://ui.perfetto.dev)\n",
			c.EventCount(), path)
	}
	if explain >= 0 {
		if err := c.Explain(os.Stdout, explain); err != nil {
			fmt.Fprintf(os.Stderr, "rupam-sim: %v\n", err)
			os.Exit(1)
		}
	}
	if critPath {
		cp, err := tracing.Analyze(res.App)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rupam-sim: critical path: %v\n", err)
			os.Exit(1)
		}
		cp.Print(os.Stdout)
	}
}

func report(r *spark.Result) {
	fmt.Printf("== %s under %s ==\n", r.App.Name, r.Scheduler)
	fmt.Printf("execution time: %.1fs   tasks: %d   launches: %d\n",
		r.Duration, r.App.NumTasks(), r.Launches)
	fmt.Printf("failures: %d OOMs, %d worker crashes, %d task flakes, %d cache evictions, %d memory-straggler kills\n",
		r.OOMs, r.Crashes, r.TaskFlakes, r.Evictions, r.MemKills)
	fmt.Printf("speculative copies: %d   heartbeats: %d\n", r.SpecCopies, r.Heartbeats)
	if r.ExecutorsLost+r.FetchFailures+r.Resubmissions+r.NodesBlacklisted+r.FailStops > 0 || r.Aborted != nil {
		fmt.Printf("fault tolerance: %d fail-stops, %d executors lost (%d rejoined), %d fetch failures, %d resubmissions, %d blacklistings\n",
			r.FailStops, r.ExecutorsLost, r.ExecutorsRejoined, r.FetchFailures, r.Resubmissions, r.NodesBlacklisted)
	}
	if r.PreemptNotices > 0 {
		fmt.Printf("preemption: %d notices, %d kills, %d drains completed, %d blocks re-replicated (%d redirected fetches), %d losses uncharged\n",
			r.PreemptNotices, r.PreemptKills, r.DrainsCompleted,
			r.DrainBlocksMoved, r.DrainFetchRedirects, r.PreemptLossesUncharged)
	}
	if r.DriverCrashes > 0 {
		fmt.Printf("driver: %d crashes, %d recoveries from the write-ahead log\n",
			r.DriverCrashes, r.DriverRecoveries)
	}
	if r.Aborted != nil {
		fmt.Printf("ABORTED: %v\n", r.Aborted)
	}

	prev := 0.0
	for i, je := range r.JobEnds {
		fmt.Printf("  job %2d/%d finished at %7.1fs (+%6.1fs)\n", i+1, len(r.JobEnds), je, je-prev)
		prev = je
	}

	b := metrics.AppBreakdown(r.App)
	fmt.Printf("breakdown (task-seconds): compute=%.1f gc=%.1f sched=%.2f shuffle-disk=%.1f shuffle-net=%.1f\n",
		b.Compute, b.GC, b.Scheduler, b.ShuffleDisk, b.ShuffleNet)

	lc := metrics.AppLocality(r.App)
	fmt.Printf("locality: PROCESS=%d NODE=%d RACK=%d ANY=%d\n\n",
		lc.Process, lc.Node, lc.Rack, lc.Any)
}
